"""Plan execution: streams partitions through the operator tree.

Narrow operators (project / filter / with_column / map_partitions /
union / limit) are fully pipelined: one input partition is pulled,
transformed, yielded, and released before the next is pulled, so the
working set stays O(partition).  Wide operators hold only their
*state*: the factorized key codes for joins (build side), the per-group
accumulator arrays for aggregation, and the full buffer for order_by
and repartition (documented as materializing operators, as in Spark).

Joins and group-bys are vectorized end to end.  The join factorizes
the build side's (possibly multi-column) keys into dense integer codes
once, then probes each left partition with ``searchsorted`` range
lookups — no per-row Python.  Group-by keeps per-group accumulator
*arrays* and merges each partition's partial aggregates with
``np.unique`` + scatter updates; a dict-of-accumulators fallback
handles non-sortable object keys.

A :class:`~repro.utils.memory.MemoryMeter` passed via ``meter``
observes exactly these allocations, which is how the Figure 8 bench
measures the engine's peak working set (and how an artificial memory
cap can make it fail, for symmetry with the baseline's OOM).

**Morsel-parallel mode** (``parallelism > 1``): compiled stages
(:class:`~repro.engine.plan.CompiledStage`) fan their per-partition
work out over a bounded ``ThreadPoolExecutor`` — numpy ufuncs release
the GIL, so stage compute runs concurrently while the driver thread
keeps pulling child partitions.  Results flow through an *ordered*
bounded prefetch window (``queue_depth`` in-flight partitions), so
output order is deterministic, bit-identical to serial execution, and
the out-of-core guarantee degrades gracefully to
O(parallelism + queue_depth) resident partitions.  All other
operators, and all metering, stay on the driver thread — worker
threads only ever run pure per-partition compute.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.engine import plan as P
from repro.engine.aggregates import (
    ArrayGroupState,
    _State,
    empty_group_partition,
    partial_aggregate,
)
from repro.engine.partition import Partition


class _ExecContext:
    """Per-execution state threaded through the operator tree: the
    memory meter, the PlanStats observer, the session's SpillManager
    (out-of-core execution), and the (lazily created) morsel thread
    pool."""

    __slots__ = (
        "meter",
        "stats",
        "parallelism",
        "queue_depth",
        "spill",
        "_pool",
    )

    def __init__(self, meter, stats, parallelism, queue_depth, spill=None):
        self.meter = meter
        self.stats = stats
        self.parallelism = max(1, int(parallelism))
        self.queue_depth = (
            max(1, int(queue_depth))
            if queue_depth is not None
            else 2 * self.parallelism
        )
        self.spill = spill
        self._pool = None

    def spill_budget(self):
        """The session memory budget, or None when spilling is off."""
        if self.spill is None:
            return None
        return self.spill.budget

    def note_spill(self, node: P.PlanNode, nbytes: int) -> None:
        """Credit spilled bytes to the operator that wrote them, for
        the ``spilled=`` annotation in ``explain(analyze=True)``."""
        if self.stats is not None:
            self.stats.add_spill(node, nbytes)

    def iterate(self, node: P.PlanNode):
        if self.stats is None:
            return _iter_node(node, self)
        return self.stats.observe(node, _iter_node(node, self))

    def pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="repro-morsel",
            )
        return self._pool

    def close(self):
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


def iter_partitions(
    node: P.PlanNode,
    meter=None,
    stats=None,
    parallelism: int = 1,
    queue_depth: int | None = None,
    spill=None,
):
    """Yield the partitions produced by a plan node.

    ``stats`` (a :class:`repro.obs.PlanStats`) meters every operator
    in the tree: rows-out, partitions, cumulative wall time, and peak
    partition bytes per node.  With ``stats=None`` (the default for
    direct calls) execution is entirely unwrapped — the no-op fast
    path.  Metering only observes pulled partitions; it never touches
    their contents, so traced results are bit-identical to untraced
    ones.

    ``parallelism`` > 1 enables morsel-parallel execution of compiled
    stages over a thread pool with an ordered prefetch window of
    ``queue_depth`` (default ``2 * parallelism``) in-flight
    partitions; results are identical to serial execution.

    ``spill`` (a :class:`repro.engine.spill.SpillManager` with a
    ``budget``) enables out-of-core execution: the materializing
    operators — order_by, repartition, the join build side, cache —
    bound their in-memory state to the budget and spill the rest to
    disk, producing bit-identical results.
    """
    ctx = _ExecContext(meter, stats, parallelism, queue_depth, spill)
    if ctx.parallelism <= 1:
        return ctx.iterate(node)
    return _iterate_closing(node, ctx)


def _iterate_closing(node: P.PlanNode, ctx: _ExecContext):
    """Parallel top-level entry: guarantee the worker pool dies with
    the generator, even when the consumer stops early."""
    try:
        yield from ctx.iterate(node)
    finally:
        ctx.close()


def _iter_node(node: P.PlanNode, ctx: _ExecContext):
    if isinstance(node, P.Source):
        yield from _run_source(node, ctx)
    elif isinstance(node, P.StreamingSource):
        yield from _run_streaming_source(node, ctx)
    elif isinstance(node, P.CompiledStage):
        yield from _run_compiled_stage(node, ctx)
    elif isinstance(node, P.Project):
        for part in ctx.iterate(node.child):
            yield Partition(
                {name: expr.evaluate(part) for name, expr in node.exprs}
            )
    elif isinstance(node, P.Filter):
        for part in ctx.iterate(node.child):
            keep = np.asarray(node.predicate.evaluate(part), dtype=bool)
            if keep.all():
                # All rows survive: pass the partition through as-is
                # instead of copying every column through mask().
                yield part
            else:
                yield part.mask(keep)
    elif isinstance(node, P.WithColumn):
        for part in ctx.iterate(node.child):
            yield part.with_column(node.name, node.expr.evaluate(part))
    elif isinstance(node, P.WithColumns):
        for part in ctx.iterate(node.child):
            for name, expr in node.items:
                part = part.with_column(name, expr.evaluate(part))
            yield part
    elif isinstance(node, P.Drop):
        for part in ctx.iterate(node.child):
            yield part.drop(node.names)
    elif isinstance(node, P.Union):
        for child in node.inputs:
            yield from ctx.iterate(child)
    elif isinstance(node, P.Limit):
        yield from _run_limit(node, ctx)
    elif isinstance(node, P.MapPartitions):
        for part in ctx.iterate(node.child):
            yield node.fn(part)
    elif isinstance(node, P.GroupByAgg):
        yield from _run_group_by(node, ctx)
    elif isinstance(node, P.Join):
        yield from _run_join(node, ctx)
    elif isinstance(node, P.OrderBy):
        yield from _run_order_by(node, ctx)
    elif isinstance(node, P.Repartition):
        yield from _run_repartition(node, ctx)
    elif isinstance(node, P.Cache):
        yield from _run_cache(node, ctx)
    else:
        raise TypeError(f"unknown plan node {type(node).__name__}")


def _run_compiled_stage(node: P.CompiledStage, ctx: _ExecContext):
    from repro.engine.compile import stage_runner

    runner = stage_runner(node)
    stats = ctx.stats
    if stats is None:
        apply = runner
    else:
        # Record pure compute time (excluding child pulls and queue
        # waits) so explain(analyze=True) can report per-stage
        # rows/sec.  add_work is thread-safe: in parallel mode this
        # runs on worker threads.
        perf_counter = time.perf_counter

        def apply(part, _runner=runner):
            started = perf_counter()
            out = _runner(part)
            stats.add_work(node, perf_counter() - started)
            return out

    parts = ctx.iterate(node.child)
    if ctx.parallelism > 1:
        yield from _morsel_map(apply, parts, ctx)
    else:
        for part in parts:
            yield apply(part)


def _morsel_map(fn, parts, ctx: _ExecContext):
    """Ordered, bounded fan-out: submit up to ``queue_depth`` morsels,
    yield strictly in submission order.  FIFO completion keeps results
    bit-identical to serial execution; the bound keeps at most
    O(parallelism + queue_depth) partitions resident.

    Trace context crosses the fan-out: the driver's current span is
    captured here and passed as the explicit parent of each
    worker-side ``engine.morsel`` span, so a parallel query still
    yields one connected span tree (the morsel spans land under the
    driver's ``engine.query`` span even though they time on
    ``repro-morsel-*`` threads)."""
    from repro import obs

    tracer = obs.tracer
    parent = tracer.current if tracer.enabled else None
    if parent is not None:
        inner = fn

        def fn(part, _inner=inner, _parent=parent):
            with tracer.span("engine.morsel", parent=_parent) as span:
                out = _inner(part)
                span.add("rows", out.num_rows)
                return out

    pool = ctx.pool()
    pending: deque = deque()
    try:
        for part in parts:
            pending.append(pool.submit(fn, part))
            if len(pending) >= ctx.queue_depth:
                yield pending.popleft().result()
        while pending:
            yield pending.popleft().result()
    finally:
        for future in pending:
            future.cancel()


def _run_cache(node: P.Cache, ctx: _ExecContext):
    meter = ctx.meter
    budget = ctx.spill_budget()
    if node.materialized is None:
        materialized = []
        resident = 0
        for part in ctx.iterate(node.child):
            nbytes = part.nbytes
            if budget is not None and resident + nbytes > budget:
                # Over budget: the overflow partitions live on disk
                # and are restored on every replay.
                materialized.append(ctx.spill.spill(part))
                ctx.note_spill(node, nbytes)
            else:
                resident += nbytes
                if meter is not None:
                    meter.allocate(nbytes)  # stays resident (no release)
                materialized.append(part)
        node.materialized = materialized
    for entry in node.materialized:
        if isinstance(entry, Partition):
            yield entry
            continue
        if ctx.spill is None:
            from repro.engine.spill import SpillError

            raise SpillError(
                "cache was spilled under a memory budget; replaying it "
                "requires the owning session's spill manager"
            )
        part = ctx.spill.restore(entry)
        if meter is not None:
            meter.allocate(part.nbytes)
        try:
            yield part
        finally:
            if meter is not None:
                meter.release(part.nbytes)


def _run_source(node: P.Source, ctx: _ExecContext):
    meter = ctx.meter
    for factory in node.partition_factories:
        part = factory()
        nbytes = part.nbytes
        if meter is not None:
            meter.allocate(nbytes)
        try:
            yield part
        finally:
            if meter is not None:
                meter.release(nbytes)


def _run_streaming_source(node: P.StreamingSource, ctx: _ExecContext):
    """Replay a streaming source's retained micro-batches, one
    partition per batch — partition boundaries follow ingestion
    boundaries, so a recompute over the view merges partials in the
    exact order the incremental state did."""
    meter = ctx.meter
    # Snapshot: appends racing this execution affect the next one.
    for part in list(node.batches):
        nbytes = part.nbytes
        if meter is not None:
            meter.allocate(nbytes)
        try:
            yield part
        finally:
            if meter is not None:
                meter.release(nbytes)


def _run_limit(node: P.Limit, ctx: _ExecContext):
    remaining = node.n
    for part in ctx.iterate(node.child):
        if remaining <= 0:
            return
        if part.num_rows <= remaining:
            remaining -= part.num_rows
            yield part
        else:
            yield part.take(remaining)
            return


# ----------------------------------------------------------------------
# Group-by: array-level partial merges (dict fallback for object keys)
# ----------------------------------------------------------------------
# The vectorized per-group state (ArrayGroupState) lives in
# repro.engine.aggregates: the streaming DeltaState persists the same
# class across micro-batches, which is what makes incremental results
# bit-identical to this batch path by construction.
def _run_group_by(node: P.GroupByAgg, ctx: _ExecContext):
    meter = ctx.meter
    keys = node.keys
    specs = node.aggs
    array_state = ArrayGroupState(specs)
    dict_state: dict | None = None  # object-key fallback
    key_dtypes = None
    state_nbytes = 0

    for part in ctx.iterate(node.child):
        if part.num_rows == 0:
            if key_dtypes is None and all(k in part.columns for k in keys):
                key_dtypes = [part.columns[k].dtype for k in keys]
            continue
        key_arrays = [part.columns[k] for k in keys]
        if key_dtypes is None:
            key_dtypes = [arr.dtype for arr in key_arrays]
        stacked = np.stack([np.asarray(a) for a in key_arrays], axis=1)
        if dict_state is None and stacked.dtype != object:
            array_state.update(stacked, part)
        else:
            if dict_state is None:
                dict_state = array_state.to_dict_state()
            _update_dict_state(dict_state, key_arrays, part, specs)
        if meter is not None:
            if dict_state is not None:
                new_nbytes = _estimate_state_nbytes(dict_state, len(specs))
            else:
                new_nbytes = array_state.nbytes
            meter.allocate(new_nbytes - state_nbytes)
            state_nbytes = new_nbytes

    if dict_state is not None:
        out = _state_to_partition(dict_state, keys, key_dtypes, specs)
    else:
        out = array_state.to_partition(keys, key_dtypes)
    if meter is not None:
        meter.release(state_nbytes)
        meter.allocate(out.nbytes)
    try:
        yield out
    finally:
        if meter is not None:
            meter.release(out.nbytes)


def _update_dict_state(state, key_arrays, part, specs) -> None:
    for spec_index, spec in enumerate(specs):
        values = None if spec.column == "*" else part.columns[spec.column]
        uniques, partials, counts = partial_aggregate(
            key_arrays, values, spec.kind
        )
        for key, partial, cnt in zip(uniques, partials, counts):
            slot = state.get(key)
            if slot is None:
                slot = [_State(s.kind) for s in specs]
                state[key] = slot
            slot[spec_index].update(partial, int(cnt))


def _estimate_state_nbytes(state: dict, num_specs: int) -> int:
    # key tuple (~24B/elem) + accumulator objects (~56B each) + dict slot
    return len(state) * (64 + 24 * 2 + 56 * num_specs)


def _state_to_partition(state, keys, key_dtypes, specs) -> Partition:
    if not state:
        return empty_group_partition(keys, specs)
    key_rows = list(state.keys())
    columns = {}
    for i, key_name in enumerate(keys):
        values = [row[i] for row in key_rows]
        arr = np.asarray(values)
        if key_dtypes is not None and key_dtypes[i].kind in "iu":
            arr = arr.astype(np.int64)
        columns[key_name] = arr
    for spec_index, spec in enumerate(specs):
        columns[spec.out_name] = np.asarray(
            [state[row][spec_index].result() for row in key_rows]
        )
    return Partition(columns)


# ----------------------------------------------------------------------
# Join: vectorized key factorization + searchsorted range probes
# ----------------------------------------------------------------------
class _ColumnCodec:
    """Factorization of one build-side key column.

    Numeric columns keep their sorted uniques and map probe values with
    ``searchsorted``; object columns (strings, geometries) fall back to
    a value -> code dict.  Probe values absent from the build side get
    code -1.
    """

    __slots__ = ("uniques", "mapping", "size", "dense", "base")

    # Dense-range integer keys are coded as ``value - min`` directly —
    # no factorization pass at all — as long as the implied code range
    # (and the per-code tables sized by it) stays proportionate to the
    # build side.  Unused codes in the range simply get count zero.
    _DENSE_SLACK = 4
    _DENSE_MIN = 1 << 20

    def __init__(self, arr: np.ndarray):
        self.dense = False
        self.base = 0
        self.uniques = None
        self.mapping = None
        if arr.dtype == object:
            mapping: dict = {}
            for value in arr:
                mapping.setdefault(value, len(mapping))
            self.mapping = mapping
            self.size = len(mapping)
            return
        if arr.dtype.kind in "iub" and len(arr):
            low, high = int(arr.min()), int(arr.max())
            span = high - low + 1
            if (
                span <= max(self._DENSE_SLACK * len(arr), self._DENSE_MIN)
                and -(1 << 62) < low
                and high < (1 << 62)
            ):
                self.dense = True
                self.base = low
                self.size = span
                return
        self.uniques = np.unique(arr)
        self.size = len(self.uniques)

    def encode_build(self, arr: np.ndarray) -> np.ndarray:
        return self.encode_probe(arr)

    def encode_probe(self, arr: np.ndarray) -> np.ndarray:
        if self.mapping is not None or arr.dtype == object:
            mapping = self.mapping
            if mapping is None:
                mapping = {v: i for i, v in enumerate(self.uniques)}
                self.mapping = mapping
            return np.fromiter(
                (mapping.get(v, -1) for v in arr),
                dtype=np.int64,
                count=len(arr),
            )
        if self.dense:
            if arr.dtype.kind not in "iub":
                arr = np.asarray(arr)
                with np.errstate(invalid="ignore"):
                    whole = arr.astype(np.int64)
                    exact = whole == arr
                offsets = whole - self.base
                valid = exact & (offsets >= 0) & (offsets < self.size)
            else:
                offsets = arr.astype(np.int64) - self.base
                valid = (offsets >= 0) & (offsets < self.size)
            return np.where(valid, offsets, -1)
        idx = np.searchsorted(self.uniques, arr)
        idx = np.minimum(idx, self.size - 1)
        with np.errstate(invalid="ignore"):
            valid = self.uniques[idx] == arr
        return np.where(valid, idx, -1).astype(np.int64)

    @property
    def nbytes(self) -> int:
        if self.uniques is not None:
            return int(self.uniques.nbytes)
        if self.dense:
            return 0  # per-code tables are counted by the build
        return self.size * 64  # rough dict-entry estimate


class _HashJoinBuild:
    """Build side of the broadcast hash join, fully vectorized.

    Multi-column keys are folded into one dense int64 code per row by
    factorizing each column, then pairwise combining and re-compressing
    (keeping magnitudes < n_right² so the fold can never overflow).
    Because the final codes are dense 0..U-1, the row ranges per code
    are direct-indexed tables (``bincount`` + prefix sums): probing a
    left partition costs one encode pass plus fancy indexing, with no
    per-row Python and no binary search over the build rows.  Within
    one key the matched build rows keep their original order,
    preserving the per-row hash table's output ordering.
    """

    def __init__(self, right: Partition, on: list):
        self.codecs = []
        self.combine_uniques = []  # compressed code values per fold step
        codes = None
        for name in on:
            arr = right.columns[name]
            codec = _ColumnCodec(arr)
            self.codecs.append(codec)
            column_codes = codec.encode_build(arr)
            if codes is None:
                codes = column_codes
            else:
                codes = codes * (codec.size + 1) + column_codes
                uniques, codes = np.unique(codes, return_inverse=True)
                codes = codes.reshape(-1).astype(np.int64)
                self.combine_uniques.append(uniques)
        self.num_codes = (
            self.codecs[0].size if len(on) == 1 else len(self.combine_uniques[-1])
        )
        self.order = np.argsort(codes, kind="stable")
        counts = np.bincount(codes, minlength=self.num_codes)
        self.count_by_code = counts.astype(np.int64)
        self.start_by_code = np.concatenate(
            ([0], np.cumsum(self.count_by_code)[:-1])
        )

    def probe_codes(self, part: Partition, on: list) -> np.ndarray:
        codes = None
        step = 0
        for codec, name in zip(self.codecs, on):
            column_codes = codec.encode_probe(
                np.asarray(part.columns[name])
            )
            if codes is None:
                codes = column_codes
            else:
                missing = (codes < 0) | (column_codes < 0)
                codes = codes * (codec.size + 1) + column_codes
                uniques = self.combine_uniques[step]
                step += 1
                idx = np.searchsorted(uniques, codes)
                idx = np.minimum(idx, len(uniques) - 1)
                valid = (uniques[idx] == codes) & ~missing
                codes = np.where(valid, idx, -1).astype(np.int64)
        return codes

    def probe(self, part: Partition, on: list):
        """Return (left_idx, right_idx, match_counts) for one left
        partition, matching the per-row build/probe output order."""
        codes = self.probe_codes(part, on)
        hit = codes >= 0
        safe = np.where(hit, codes, 0)
        counts = np.where(hit, self.count_by_code[safe], 0)
        starts = self.start_by_code[safe]
        total = int(counts.sum())
        left_idx = np.repeat(
            np.arange(part.num_rows, dtype=np.int64), counts
        )
        cumulative = np.cumsum(counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            cumulative - counts, counts
        )
        right_idx = self.order[np.repeat(starts, counts) + within]
        return left_idx, right_idx, counts

    @property
    def nbytes(self) -> int:
        total = int(
            self.order.nbytes
            + self.count_by_code.nbytes
            + self.start_by_code.nbytes
        )
        for codec in self.codecs:
            total += codec.nbytes
        for uniques in self.combine_uniques:
            total += int(uniques.nbytes)
        return total


def _left_join_promote(arr: np.ndarray) -> np.ndarray:
    """Right-side value columns of a left join are promoted explicitly:
    integer/bool become float64 so unmatched rows can hold NaN with a
    dtype that does not depend on which partitions had matches."""
    if arr.dtype.kind in "iub":
        return arr.astype(np.float64)
    return arr


def _null_fill(dtype: np.dtype, n: int) -> np.ndarray:
    """Unmatched-row fill for a right column, sentinel chosen per dtype:
    NaN for floats (and promoted int/bool), NaT for datetimes, NaN
    boxed in object arrays otherwise."""
    if dtype.kind in "iub":
        return np.full(n, np.nan, dtype=np.float64)
    if dtype.kind in "fc":
        return np.full(n, np.nan, dtype=dtype)
    if dtype.kind in "mM":
        return np.full(n, dtype.type("NaT"), dtype=dtype)
    out = np.empty(n, dtype=object)
    out[:] = np.nan
    return out


def _run_join(node: P.Join, ctx: _ExecContext):
    if ctx.spill_budget() is not None:
        yield from _run_join_budgeted(node, ctx)
        return
    meter = ctx.meter
    # Build side: fully materialize the right input (broadcast join).
    right_parts = [
        p for p in ctx.iterate(node.right) if p.num_rows > 0
    ]
    build_nbytes = sum(p.nbytes for p in right_parts)
    if meter is not None:
        meter.allocate(build_nbytes)
    try:
        yield from _join_probe_stream(node, ctx, right_parts)
    finally:
        if meter is not None:
            meter.release(build_nbytes)


def _join_probe_stream(node: P.Join, ctx: _ExecContext, right_parts):
    """The in-memory broadcast join: build over the buffered right
    side, probe the streaming left side.  The caller owns the build
    buffer's memory accounting; this meters only the probe tables."""
    meter = ctx.meter
    probe_nbytes = 0
    try:
        right = Partition.concat(right_parts) if right_parts else None
        build = None
        right_value_names: list = []
        if right is not None:
            build = _HashJoinBuild(right, node.on)
            right_value_names = [
                n for n in right.columns if n not in node.on
            ]
            probe_nbytes = build.nbytes
            if meter is not None:
                meter.allocate(probe_nbytes)
        promote = node.how == "left"

        for part in ctx.iterate(node.left):
            if part.num_rows == 0:
                continue
            if build is None:
                left_idx = np.empty(0, dtype=np.int64)
                right_idx = left_idx
                counts = np.zeros(part.num_rows, dtype=np.int64)
            else:
                left_idx, right_idx, counts = build.probe(part, node.on)
            columns = {
                name: arr[left_idx] for name, arr in part.columns.items()
            }
            for name in right_value_names:
                matched = right.columns[name][right_idx]
                columns[name] = (
                    _left_join_promote(matched) if promote else matched
                )
            matched_part = Partition(columns)
            if node.how == "left":
                unmatched = np.nonzero(counts == 0)[0]
                if len(unmatched):
                    null_cols = {
                        name: arr[unmatched]
                        for name, arr in part.columns.items()
                    }
                    for name in right_value_names:
                        null_cols[name] = _null_fill(
                            right.columns[name].dtype, len(unmatched)
                        )
                    matched_part = Partition.concat(
                        [matched_part, Partition(null_cols)]
                    )
            yield matched_part
    finally:
        if meter is not None:
            meter.release(probe_nbytes)


def _run_join_budgeted(node: P.Join, ctx: _ExecContext):
    """Join under a memory budget: buffer the build side only up to
    the budget; if it fits, run the exact in-memory join on the
    buffered partitions, otherwise switch to the grace-partitioned
    spill path."""
    meter = ctx.meter
    budget = ctx.spill_budget()
    buffered: list = []
    buffered_bytes = 0
    over = False
    right_iter = ctx.iterate(node.right)
    for part in right_iter:
        if part.num_rows == 0:
            continue
        buffered.append(part)
        buffered_bytes += part.nbytes
        if meter is not None:
            meter.allocate(part.nbytes)
        if buffered_bytes > budget:
            over = True
            break
    if not over:
        try:
            yield from _join_probe_stream(node, ctx, buffered)
        finally:
            if meter is not None:
                meter.release(buffered_bytes)
        return
    yield from _join_grace(node, ctx, buffered, right_iter, buffered_bytes)


#: Hash buckets for the grace join; each bucket's build table is
#: restored (and built) independently, so the resident build state is
#: roughly build_bytes / _GRACE_BUCKETS.
_GRACE_BUCKETS = 8
_BUCKET_COL = "__repro_bucket__"
_LEFT_IDX_COL = "__repro_left_idx__"


def _grace_column_hash(arr: np.ndarray) -> np.ndarray:
    """Per-row uint64 hash of one key column, consistent across the
    dtypes the probe codecs already match across: int 3, float 3.0,
    bool True and a Python ``3`` in an object column all hash alike.
    Non-integral floats hash by bit pattern (they can only ever match
    other floats); unhashable objects fall into bucket 0 on both
    sides, which degrades distribution, never correctness."""
    n = len(arr)
    if arr.dtype == object:
        out = np.empty(n, dtype=np.uint64)
        for i, value in enumerate(arr):
            try:
                out[i] = np.uint64(hash(value) & 0xFFFFFFFFFFFFFFFF)
            except TypeError:
                out[i] = np.uint64(0)
        return out
    if arr.dtype.kind in "iub":
        return arr.astype(np.int64).astype(np.uint64)
    if arr.dtype.kind in "mM":
        return arr.astype(np.int64).astype(np.uint64)
    if arr.dtype.kind == "f":
        arr64 = np.ascontiguousarray(arr, dtype=np.float64)
        with np.errstate(invalid="ignore"):
            whole = arr64.astype(np.int64)
            exact = np.isfinite(arr64) & (whole == arr64)
        return np.where(
            exact, whole.astype(np.uint64), arr64.view(np.uint64)
        )
    return np.zeros(n, dtype=np.uint64)


def _grace_bucket_codes(part: Partition, on: list, nb: int) -> np.ndarray:
    mixed = np.zeros(part.num_rows, dtype=np.uint64)
    for name in on:
        mixed = mixed * np.uint64(1_000_003) + _grace_column_hash(
            part.columns[name]
        )
    return (mixed % np.uint64(nb)).astype(np.int64)


def _join_grace(
    node: P.Join, ctx: _ExecContext, buffered, right_iter, buffered_bytes
):
    """Grace-style partitioned join: hash-partition the build side into
    spilled buckets, buffer (and spill) the probe side, then join one
    bucket's build table at a time.  Because every row of one key lands
    in exactly one bucket (in original build order), re-sorting each
    probe partition's matches by probe-row position reproduces the
    in-memory join's output bit for bit."""
    from repro.engine.spill import SpillableBuffer, SpillHandle

    meter = ctx.meter
    spill = ctx.spill
    on = node.on
    nb = _GRACE_BUCKETS
    per_bucket_budget = max(1, spill.budget // (2 * nb))
    bucket_pending: list = [[] for _ in range(nb)]
    bucket_pending_bytes = [0] * nb
    bucket_handles: list = [[] for _ in range(nb)]
    target_dtypes: dict | None = None
    column_order: list | None = None

    def flush_bucket(b: int) -> None:
        merged = Partition.concat(bucket_pending[b])
        bucket_pending[b].clear()
        if meter is not None:
            meter.release(bucket_pending_bytes[b])
        bucket_pending_bytes[b] = 0
        bucket_handles[b].append(spill.spill(merged))
        ctx.note_spill(node, merged.nbytes)

    def route(part: Partition) -> None:
        nonlocal target_dtypes, column_order
        if column_order is None:
            column_order = list(part.columns)
        target_dtypes = _accumulate_dtypes(target_dtypes, part)
        codes = _grace_bucket_codes(part, on, nb)
        for b in range(nb):
            sel = np.flatnonzero(codes == b)
            if not len(sel):
                continue
            sub = Partition._from_arrays(
                {n: a[sel] for n, a in part.columns.items()}, len(sel)
            )
            bucket_pending[b].append(sub)
            nbytes = sub.nbytes
            bucket_pending_bytes[b] += nbytes
            if meter is not None:
                meter.allocate(nbytes)
            if bucket_pending_bytes[b] >= per_bucket_budget:
                flush_bucket(b)

    # ---- Phase 1: hash-partition the build side into spilled buckets.
    for part in buffered:
        route(part)
    buffered.clear()
    if meter is not None:
        meter.release(buffered_bytes)
    for part in right_iter:
        if part.num_rows == 0:
            continue
        route(part)
    for b in range(nb):
        if bucket_pending[b]:
            flush_bucket(b)

    # ---- Phase 2: buffer the probe side (bucket codes ride along so
    # the per-bucket probe pass never recomputes hashes).
    left_buf = SpillableBuffer(spill, max(1, spill.budget // 2))
    for part in ctx.iterate(node.left):
        if part.num_rows == 0:
            continue
        codes = _grace_bucket_codes(part, on, nb)
        stored = part.with_column(_BUCKET_COL, codes)
        spilled = left_buf.append(stored)
        if spilled:
            ctx.note_spill(node, spilled)
        elif meter is not None:
            meter.allocate(stored.nbytes)

    promote = node.how == "left"
    right_value_names = [
        n for n in (column_order or []) if n not in on
    ]
    # Per probe partition: the match pieces each bucket produced, in
    # bucket order (Partition or SpillHandle).
    pieces: list = [[] for _ in range(len(left_buf))]
    pieces_mem = 0
    piece_budget = max(1, spill.budget // 4)

    try:
        # ---- Phase 3: per bucket — restore, build once, probe every
        # buffered probe partition's rows for that bucket.
        for b in range(nb):
            handles = bucket_handles[b]
            if not handles:
                continue
            bucket_parts = []
            for handle in handles:
                bucket_parts.append(spill.restore(handle))
                spill.release(handle)
            handles.clear()
            raw = Partition.concat(bucket_parts)
            del bucket_parts
            # Cast to the dtypes a whole-build concat would have
            # produced, so matched values are bit-identical to the
            # in-memory path even with mixed-dtype build partitions.
            cast_cols = {}
            for name in column_order:
                arr = raw.columns[name]
                target = target_dtypes[name]
                cast_cols[name] = (
                    arr if arr.dtype == target else arr.astype(target)
                )
            bucket_right = Partition._from_arrays(cast_cols, raw.num_rows)
            build = _HashJoinBuild(bucket_right, on)
            state_nbytes = bucket_right.nbytes + build.nbytes
            if meter is not None:
                meter.allocate(state_nbytes)
            try:
                for i, part in enumerate(left_buf.replay()):
                    sel = np.flatnonzero(part.columns[_BUCKET_COL] == b)
                    if not len(sel):
                        continue
                    sub = Partition._from_arrays(
                        {
                            n: part.columns[n][sel]
                            for n in part.columns
                            if n != _BUCKET_COL
                        },
                        len(sel),
                    )
                    left_idx, right_idx, _counts = build.probe(sub, on)
                    if not len(left_idx):
                        continue
                    piece_cols = {_LEFT_IDX_COL: sel[left_idx]}
                    for name in right_value_names:
                        matched = bucket_right.columns[name][right_idx]
                        piece_cols[name] = (
                            _left_join_promote(matched)
                            if promote
                            else matched
                        )
                    piece = Partition._from_arrays(
                        piece_cols, len(left_idx)
                    )
                    nbytes = piece.nbytes
                    if pieces_mem + nbytes > piece_budget:
                        pieces[i].append(spill.spill(piece))
                        ctx.note_spill(node, nbytes)
                    else:
                        pieces[i].append(piece)
                        pieces_mem += nbytes
                        if meter is not None:
                            meter.allocate(nbytes)
            finally:
                if meter is not None:
                    meter.release(state_nbytes)

        # ---- Phase 4: per probe partition — stitch the bucket pieces
        # back into probe-row order and emit, matching the in-memory
        # join's per-partition output exactly.
        for i, part in enumerate(left_buf.replay()):
            restored = []
            for entry in pieces[i]:
                if isinstance(entry, SpillHandle):
                    restored.append(spill.restore(entry))
                    spill.release(entry)
                else:
                    restored.append(entry)
            pieces[i] = []
            left_names = [n for n in part.columns if n != _BUCKET_COL]
            if restored:
                li = _concat_arrays(
                    [r.columns[_LEFT_IDX_COL] for r in restored]
                )
                order = np.argsort(li, kind="stable")
                li_sorted = li[order]
                columns = {
                    n: part.columns[n][li_sorted] for n in left_names
                }
                for name in right_value_names:
                    vals = _concat_arrays(
                        [r.columns[name] for r in restored]
                    )
                    columns[name] = vals[order]
            else:
                li_sorted = np.empty(0, dtype=np.int64)
                columns = {
                    n: part.columns[n][li_sorted] for n in left_names
                }
                for name in right_value_names:
                    empty = np.empty(0, dtype=target_dtypes[name])
                    columns[name] = (
                        _left_join_promote(empty) if promote else empty
                    )
            matched_part = Partition(columns)
            if node.how == "left":
                counts = np.bincount(
                    li_sorted, minlength=part.num_rows
                ) if len(li_sorted) else np.zeros(
                    part.num_rows, dtype=np.int64
                )
                unmatched = np.nonzero(counts == 0)[0]
                if len(unmatched):
                    null_cols = {
                        n: part.columns[n][unmatched] for n in left_names
                    }
                    for name in right_value_names:
                        null_cols[name] = _null_fill(
                            target_dtypes[name], len(unmatched)
                        )
                    matched_part = Partition.concat(
                        [matched_part, Partition(null_cols)]
                    )
            yield matched_part
    finally:
        if meter is not None:
            meter.release(left_buf.in_memory_bytes + pieces_mem)
        left_buf.release()


def _concat_arrays(arrays: list) -> np.ndarray:
    return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)


def _accumulate_dtypes(acc: dict | None, part: Partition) -> dict:
    """Fold one partition's column dtypes into the running
    ``np.result_type`` accumulation (what a whole-input concat would
    promote each column to)."""
    if acc is None:
        return {n: a.dtype for n, a in part.columns.items()}
    for name, arr in part.columns.items():
        prev = acc.get(name)
        if prev is None:
            acc[name] = arr.dtype
        elif prev != arr.dtype:
            acc[name] = np.result_type(prev, arr.dtype)
    return acc


#: External-merge-sort tuning.  A run flushes at budget/_RUN_DIVISOR so
#: the transient flush peak (pending + concat + sorted run with its
#: int64 tiebreak column) stays within the budget; spilled runs are
#: chunked at budget/_CHUNK_DIVISOR so a merge holding one chunk per
#: run stays around budget/2; more than _MERGE_FANIN runs triggers a
#: cascade pass that re-merges groups into longer runs.
_RUN_DIVISOR = 3
_CHUNK_DIVISOR = 16
_MERGE_FANIN = 8
#: Hidden tiebreak column: the global arrival index of every row.  It
#: makes the sort order *total*, so k-way merge output is exactly the
#: in-memory stable lexsort (and its reverse for descending).
_SPILL_IDX = "__repro_spill_idx__"


def _run_order_by(node: P.OrderBy, ctx: _ExecContext):
    if ctx.spill_budget() is not None:
        yield from _run_order_by_spilled(node, ctx)
        return
    yield from _order_by_memory_parts(
        node, ctx, list(ctx.iterate(node.child))
    )


def _order_by_memory_parts(node: P.OrderBy, ctx: _ExecContext, parts):
    meter = ctx.meter
    # Partition.concat handles all-empty inputs (schema-preserving
    # empty result), so no non-empty filtering is needed here.
    if not parts:
        return
    whole = Partition.concat(parts)
    if meter is not None:
        meter.allocate(whole.nbytes)
    try:
        key_arrays = [whole.columns[k] for k in reversed(node.keys)]
        order = np.lexsort(key_arrays)
        if not node.ascending:
            order = order[::-1]
        yield Partition(
            {name: arr[order] for name, arr in whole.columns.items()}
        )
    finally:
        if meter is not None:
            meter.release(whole.nbytes)


def _spill_chunked(part: Partition, chunk_bytes: int, ctx, node) -> list:
    """Spill one (sorted) partition as a sequence of row chunks of
    roughly ``chunk_bytes`` each; returns the chunk handles in order."""
    n = part.num_rows
    per_row = max(1, part.nbytes // max(1, n))
    rows_per_chunk = max(1, int(chunk_bytes // per_row))
    handles = []
    for start in range(0, n, rows_per_chunk):
        stop = min(n, start + rows_per_chunk)
        chunk = Partition._from_arrays(
            {name: arr[start:stop] for name, arr in part.columns.items()},
            stop - start,
        )
        handles.append(ctx.spill.spill(chunk))
        ctx.note_spill(node, chunk.nbytes)
    return handles


def _run_order_by_spilled(node: P.OrderBy, ctx: _ExecContext):
    """External merge sort under a memory budget.

    Input partitions are buffered until ~budget/2, then sorted into a
    *run* (with the arrival-index tiebreak column attached) and spilled
    in chunks.  Runs are k-way merged by replaying one chunk per run at
    a time — the merge itself re-uses ``np.lexsort``, so NaN and object
    key comparisons behave exactly like the in-memory path.
    """
    meter = ctx.meter
    spill = ctx.spill
    budget = ctx.spill_budget()
    run_budget = max(1, budget // _RUN_DIVISOR)
    chunk_bytes = max(1, budget // _CHUNK_DIVISOR)
    pending: list = []
    pending_bytes = 0
    next_idx = 0
    runs: list = []  # list of chunk-handle lists, each run sorted asc
    run_dtypes: list = []
    target_dtypes: dict | None = None

    def flush_run() -> None:
        nonlocal pending_bytes, next_idx
        whole = Partition.concat(pending)
        pending.clear()
        if meter is not None:
            meter.allocate(whole.nbytes)
            meter.release(pending_bytes)
        pending_bytes = 0
        run_nbytes = 0
        try:
            idx = np.arange(
                next_idx, next_idx + whole.num_rows, dtype=np.int64
            )
            next_idx += whole.num_rows
            key_arrays = [idx] + [
                whole.columns[k] for k in reversed(node.keys)
            ]
            order = np.lexsort(key_arrays)
            sorted_cols = {
                name: arr[order] for name, arr in whole.columns.items()
            }
            sorted_cols[_SPILL_IDX] = idx[order]
            run = Partition._from_arrays(sorted_cols, whole.num_rows)
            run_nbytes = run.nbytes
            if meter is not None:
                meter.allocate(run_nbytes)
            run_dtypes.append(
                {n: a.dtype for n, a in whole.columns.items()}
            )
            runs.append(_spill_chunked(run, chunk_bytes, ctx, node))
        finally:
            if meter is not None:
                meter.release(whole.nbytes + run_nbytes)

    try:
        for part in ctx.iterate(node.child):
            nbytes = part.nbytes
            # Flush *before* appending when this partition would push
            # pending past the run budget, so the buffered run never
            # overshoots by a whole (possibly large) partition.
            if (
                pending
                and pending_bytes + nbytes > run_budget
                and any(p.num_rows for p in pending)
            ):
                flush_run()
            pending.append(part)
            pending_bytes += nbytes
            if meter is not None:
                meter.allocate(nbytes)
            target_dtypes = _accumulate_dtypes(target_dtypes, part)
            if pending_bytes >= run_budget and any(
                p.num_rows for p in pending
            ):
                flush_run()

        if not runs:
            # Everything fit under the budget: take the exact
            # in-memory path (bit-for-bit the unbounded behaviour).
            parts, pending = pending, []
            if meter is not None:
                meter.release(pending_bytes)
            pending_bytes = 0
            yield from _order_by_memory_parts(node, ctx, parts)
            return
        if pending:
            if any(p.num_rows for p in pending):
                flush_run()
            else:
                # Trailing all-empty partitions contribute no rows.
                pending.clear()
                if meter is not None:
                    meter.release(pending_bytes)
                pending_bytes = 0

        if any(
            dtypes[name] != target_dtypes[name]
            for dtypes in run_dtypes
            for name in dtypes
        ):
            # A column promoted differently across runs than the whole
            # concat would have: merging on mismatched dtypes cannot be
            # bit-identical, so restore everything and re-run the
            # in-memory sort (rare — mixed-dtype partitions).
            yield from _order_by_restore_fallback(node, ctx, runs)
            return

        # Cascade: cap merge fan-in so resident chunks stay bounded.
        while len(runs) > _MERGE_FANIN:
            merged_runs = []
            for i in range(0, len(runs), _MERGE_FANIN):
                group = runs[i : i + _MERGE_FANIN]
                if len(group) == 1:
                    merged_runs.append(group[0])
                    continue
                handles: list = []
                batch: list = []
                batch_bytes = 0
                for piece in _merge_spilled_runs(
                    group, node.keys, True, ctx, node, strip=False
                ):
                    batch.append(piece)
                    batch_bytes += piece.nbytes
                    if batch_bytes >= chunk_bytes:
                        merged = (
                            Partition.concat(batch)
                            if len(batch) > 1
                            else batch[0]
                        )
                        handles.extend(
                            _spill_chunked(merged, chunk_bytes, ctx, node)
                        )
                        batch = []
                        batch_bytes = 0
                if batch:
                    merged = (
                        Partition.concat(batch)
                        if len(batch) > 1
                        else batch[0]
                    )
                    handles.extend(
                        _spill_chunked(merged, chunk_bytes, ctx, node)
                    )
                merged_runs.append(handles)
            runs = merged_runs

        yield from _merge_spilled_runs(
            runs, node.keys, node.ascending, ctx, node, strip=True
        )
    finally:
        if meter is not None and pending_bytes:
            meter.release(pending_bytes)


def _order_by_restore_fallback(node: P.OrderBy, ctx: _ExecContext, runs):
    spill = ctx.spill
    parts = []
    for handles in runs:
        for handle in handles:
            parts.append(spill.restore(handle))
            spill.release(handle)
    whole = Partition.concat(parts)
    del parts
    arrival = np.argsort(whole.columns[_SPILL_IDX], kind="stable")
    restored = Partition._from_arrays(
        {
            name: arr[arrival]
            for name, arr in whole.columns.items()
            if name != _SPILL_IDX
        },
        whole.num_rows,
    )
    yield from _order_by_memory_parts(node, ctx, [restored])


def _merge_spilled_runs(runs, keys, ascending, ctx, node, strip):
    """K-way merge of sorted spilled runs, one resident chunk per run.

    Runs are stored ascending; for a descending sort the chunks are
    read last-to-first with rows reversed, which turns each run into a
    descending sequence and keeps the merge logic identical.  Each
    round lexsorts the concatenated head chunks (arrival-index column
    as the least-significant key, so the order is total) and emits the
    *safe prefix*: every row that precedes the last loaded row of each
    run that still has unread chunks — rows no unseen chunk can beat.

    Emissions are additionally cut at sort-key group boundaries, so
    rows with equal keys never straddle two output partitions — the
    invariant ``order_by`` consumers rely on ("every timestep lands in
    one place", ``df_formatter``).  A single key group larger than a
    chunk grows the resident buffers until its end is seen.
    """
    spill = ctx.spill
    meter = ctx.meter
    remaining = [list(handles) for handles in runs]
    if not ascending:
        for handles in remaining:
            handles.reverse()
    buffers: list = [None] * len(remaining)
    buf_bytes = [0] * len(remaining)

    def load(r: int) -> None:
        handle = remaining[r].pop(0)
        part = spill.restore(handle)
        spill.release(handle)
        if not ascending:
            part = Partition._from_arrays(
                {n: a[::-1] for n, a in part.columns.items()},
                part.num_rows,
            )
        if buffers[r] is None:
            buffers[r] = part
        else:
            buffers[r] = Partition.concat([buffers[r], part])
        nbytes = part.nbytes
        buf_bytes[r] += nbytes
        if meter is not None:
            meter.allocate(nbytes)

    try:
        grow_run: int | None = None
        while True:
            for r in range(len(remaining)):
                if remaining[r] and (grow_run == r or buffers[r] is None):
                    load(r)
            grow_run = None
            live = [r for r in range(len(remaining)) if buffers[r] is not None]
            if not live:
                return
            offsets = np.cumsum(
                [0] + [buffers[r].num_rows for r in live]
            )
            head = Partition.concat([buffers[r] for r in live])
            key_arrays = [head.columns[_SPILL_IDX]] + [
                head.columns[k] for k in reversed(keys)
            ]
            order = np.lexsort(key_arrays)
            if not ascending:
                order = order[::-1]
            pos = np.empty(len(order), dtype=np.int64)
            pos[order] = np.arange(len(order))
            final = not any(remaining[r] for r in live)
            safe = head.num_rows
            limiting = None
            for j, r in enumerate(live):
                if remaining[r]:
                    boundary = int(pos[offsets[j + 1] - 1])
                    if boundary + 1 < safe or limiting is None:
                        limiting = r
                    safe = min(safe, boundary + 1)
            if not final:
                # An unseen row can still belong to the key group of
                # the last safe row, so only whole groups up to that
                # one may be emitted.  When nothing is emittable, pull
                # the next chunk of the run that limits the safe
                # prefix and retry.
                safe = _last_group_start(head, keys, order, safe)
                if safe == 0:
                    grow_run = limiting
                    continue
            emit = order[:safe]
            out = Partition._from_arrays(
                {
                    name: head.columns[name][emit]
                    for name in head.columns
                    if not strip or name != _SPILL_IDX
                },
                safe,
            )
            consumed = np.bincount(
                np.searchsorted(offsets[1:], emit, side="right"),
                minlength=len(live),
            )
            out_nbytes = out.nbytes
            if meter is not None:
                meter.allocate(out_nbytes)
            try:
                yield out
            finally:
                if meter is not None:
                    meter.release(out_nbytes)
            for j, r in enumerate(live):
                used = int(consumed[j])
                buf = buffers[r]
                if used == buf.num_rows:
                    buffers[r] = None
                    if meter is not None:
                        meter.release(buf_bytes[r])
                    buf_bytes[r] = 0
                elif used:
                    buffers[r] = Partition._from_arrays(
                        {
                            n: a[used:]
                            for n, a in buf.columns.items()
                        },
                        buf.num_rows - used,
                    )
                    # Re-estimate so partially consumed buffers do not
                    # stay metered at full size (group-cut leftovers
                    # mean buffers rarely empty completely).
                    left_bytes = buffers[r].nbytes
                    if meter is not None and left_bytes < buf_bytes[r]:
                        meter.release(buf_bytes[r] - left_bytes)
                        buf_bytes[r] = left_bytes
    finally:
        if meter is not None:
            meter.release(sum(buf_bytes))
        for handles in remaining:
            for handle in handles:
                spill.release(handle)


def _last_group_start(head, keys, order, safe: int) -> int:
    """Start index (in output order) of the key group containing row
    ``safe - 1``: emitting ``order[:start]`` contains only complete
    sort-key groups.  Returns 0 when the whole prefix is one group."""
    if safe == 0:
        return 0
    idx = order[:safe]
    change = np.zeros(safe, dtype=bool)
    change[0] = True
    if safe > 1:
        for key in keys:
            col = head.columns[key]
            vals = col[idx]
            neq = vals[1:] != vals[:-1]
            if col.dtype.kind == "f":
                # NaN != NaN would make every NaN row its own group;
                # consecutive NaNs are one group, like the in-memory
                # single-partition output keeps them together.
                neq &= ~(np.isnan(vals[1:]) & np.isnan(vals[:-1]))
            change[1:] |= neq
    return int(np.flatnonzero(change)[-1])


def _run_repartition(node: P.Repartition, ctx: _ExecContext):
    if ctx.spill_budget() is not None:
        yield from _run_repartition_spilled(node, ctx)
        return
    meter = ctx.meter
    parts = list(ctx.iterate(node.child))
    if not parts:
        return
    whole = Partition.concat(parts)
    # Repartition is a materializing operator like order_by: the whole
    # dataset is resident while the slices stream out, and the meter
    # must see it so ablation benches report honest peaks.
    if meter is not None:
        meter.allocate(whole.nbytes)
    try:
        n = whole.num_rows
        k = max(1, int(node.num_partitions))
        bounds = np.linspace(0, n, k + 1).astype(int)
        for start, stop in zip(bounds[:-1], bounds[1:]):
            if stop > start:
                yield Partition(
                    {
                        name: arr[start:stop]
                        for name, arr in whole.columns.items()
                    }
                )
    finally:
        if meter is not None:
            meter.release(whole.nbytes)


def _run_repartition_spilled(node: P.Repartition, ctx: _ExecContext):
    """Repartition under a memory budget: overflow input partitions
    spill, then the output slices are assembled by streaming the
    buffer back — each column cast to the dtype a whole-input concat
    would have produced, so slice contents match the in-memory path
    bit for bit."""
    from repro.engine.spill import SpillableBuffer

    meter = ctx.meter
    budget = ctx.spill_budget()
    buf = SpillableBuffer(ctx.spill, max(1, budget // 2))
    target_dtypes: dict | None = None
    saw_input = False
    for part in ctx.iterate(node.child):
        saw_input = True
        target_dtypes = _accumulate_dtypes(target_dtypes, part)
        spilled = buf.append(part)
        if spilled:
            ctx.note_spill(node, spilled)
        elif meter is not None:
            meter.allocate(part.nbytes)
    try:
        if not saw_input:
            return
        n = buf.num_rows
        k = max(1, int(node.num_partitions))
        bounds = np.linspace(0, n, k + 1).astype(int)
        stream = buf.replay()
        current: Partition | None = None
        cur_off = 0
        for start, stop in zip(bounds[:-1], bounds[1:]):
            want = int(stop - start)
            if want <= 0:
                continue
            pieces = []
            got = 0
            while got < want:
                if current is None or cur_off >= current.num_rows:
                    current = next(stream)
                    cur_off = 0
                    if current.num_rows == 0:
                        current = None
                        continue
                take = min(want - got, current.num_rows - cur_off)
                pieces.append((current, cur_off, cur_off + take))
                cur_off += take
                got += take
            out = _assemble_slices(pieces, target_dtypes)
            out_nbytes = out.nbytes
            if meter is not None:
                meter.allocate(out_nbytes)
            try:
                yield out
            finally:
                if meter is not None:
                    meter.release(out_nbytes)
    finally:
        if meter is not None:
            meter.release(buf.in_memory_bytes)
        buf.release()


def _assemble_slices(pieces, target_dtypes: dict) -> Partition:
    columns = {}
    for name, target in target_dtypes.items():
        arrays = []
        for part, start, stop in pieces:
            arr = part.columns[name][start:stop]
            if arr.dtype != target:
                arr = arr.astype(target)
            arrays.append(arr)
        columns[name] = (
            arrays[0].copy()
            if len(arrays) == 1
            else np.concatenate(arrays)
        )
    num_rows = sum(stop - start for _, start, stop in pieces)
    return Partition._from_arrays(columns, num_rows)


def plan_column_names(node: P.PlanNode) -> list[str]:
    """Statically derive output column names of a plan."""
    if isinstance(node, (P.Source, P.StreamingSource)):
        return list(node.schema.names)
    if isinstance(node, P.Project):
        return [name for name, _ in node.exprs]
    if isinstance(node, (P.Filter, P.Limit, P.OrderBy, P.Repartition)):
        return plan_column_names(node.children[0])
    if isinstance(node, P.WithColumn):
        base = plan_column_names(node.child)
        return base + ([node.name] if node.name not in base else [])
    if isinstance(node, P.WithColumns):
        base = plan_column_names(node.child)
        for name, _ in node.items:
            if name not in base:
                base = base + [name]
        return base
    if isinstance(node, P.Drop):
        dropped = set(node.names)
        return [n for n in plan_column_names(node.child) if n not in dropped]
    if isinstance(node, P.Union):
        return plan_column_names(node.inputs[0])
    if isinstance(node, P.GroupByAgg):
        return list(node.keys) + [a.out_name for a in node.aggs]
    if isinstance(node, P.Join):
        left = plan_column_names(node.left)
        right = [
            n for n in plan_column_names(node.right) if n not in node.on
        ]
        return left + right
    if isinstance(node, P.MapPartitions):
        return plan_column_names(node.child)  # best effort
    if isinstance(node, P.Cache):
        return plan_column_names(node.child)
    if isinstance(node, P.CompiledStage):
        names = plan_column_names(node.child)
        for kind, payload in node.steps:
            if kind == "project":
                names = [name for name, _ in payload]
            elif kind == "with_columns":
                for name, _ in payload:
                    if name not in names:
                        names = names + [name]
            elif kind == "drop":
                dropped = set(payload)
                names = [n for n in names if n not in dropped]
        return names
    raise TypeError(f"unknown plan node {type(node).__name__}")
