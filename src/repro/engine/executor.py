"""Plan execution: streams partitions through the operator tree.

Narrow operators (project / filter / with_column / map_partitions /
union / limit) are fully pipelined: one input partition is pulled,
transformed, yielded, and released before the next is pulled, so the
working set stays O(partition).  Wide operators hold only their
*state*: the group hash table for aggregation, the build-side hash
table for joins, and the full buffer for order_by (documented as a
materializing operator, as in Spark).

A :class:`~repro.utils.memory.MemoryMeter` passed via ``meter``
observes exactly these allocations, which is how the Figure 8 bench
measures the engine's peak working set (and how an artificial memory
cap can make it fail, for symmetry with the baseline's OOM).
"""

from __future__ import annotations

import numpy as np

from repro.engine import plan as P
from repro.engine.aggregates import _State, partial_aggregate
from repro.engine.partition import Partition


def iter_partitions(node: P.PlanNode, meter=None):
    """Yield the partitions produced by a plan node."""
    if isinstance(node, P.Source):
        yield from _run_source(node, meter)
    elif isinstance(node, P.Project):
        for part in iter_partitions(node.child, meter):
            yield Partition(
                {name: expr.evaluate(part) for name, expr in node.exprs}
            )
    elif isinstance(node, P.Filter):
        for part in iter_partitions(node.child, meter):
            keep = np.asarray(node.predicate.evaluate(part), dtype=bool)
            yield part.mask(keep)
    elif isinstance(node, P.WithColumn):
        for part in iter_partitions(node.child, meter):
            yield part.with_column(node.name, node.expr.evaluate(part))
    elif isinstance(node, P.Drop):
        for part in iter_partitions(node.child, meter):
            yield part.drop(node.names)
    elif isinstance(node, P.Union):
        for child in node.inputs:
            yield from iter_partitions(child, meter)
    elif isinstance(node, P.Limit):
        yield from _run_limit(node, meter)
    elif isinstance(node, P.MapPartitions):
        for part in iter_partitions(node.child, meter):
            yield node.fn(part)
    elif isinstance(node, P.GroupByAgg):
        yield from _run_group_by(node, meter)
    elif isinstance(node, P.Join):
        yield from _run_join(node, meter)
    elif isinstance(node, P.OrderBy):
        yield from _run_order_by(node, meter)
    elif isinstance(node, P.Repartition):
        yield from _run_repartition(node, meter)
    elif isinstance(node, P.Cache):
        yield from _run_cache(node, meter)
    else:
        raise TypeError(f"unknown plan node {type(node).__name__}")


def _run_cache(node: P.Cache, meter):
    if node.materialized is None:
        materialized = []
        for part in iter_partitions(node.child, meter):
            if meter is not None:
                meter.allocate(part.nbytes)  # stays resident (no release)
            materialized.append(part)
        node.materialized = materialized
    yield from node.materialized


def _run_source(node: P.Source, meter):
    for factory in node.partition_factories:
        part = factory()
        nbytes = part.nbytes
        if meter is not None:
            meter.allocate(nbytes)
        try:
            yield part
        finally:
            if meter is not None:
                meter.release(nbytes)


def _run_limit(node: P.Limit, meter):
    remaining = node.n
    for part in iter_partitions(node.child, meter):
        if remaining <= 0:
            return
        if part.num_rows <= remaining:
            remaining -= part.num_rows
            yield part
        else:
            yield part.take(remaining)
            return


def _run_group_by(node: P.GroupByAgg, meter):
    keys = node.keys
    specs = node.aggs
    state: dict[tuple, list[_State]] = {}
    key_dtypes = None
    state_nbytes = 0

    for part in iter_partitions(node.child, meter):
        if part.num_rows == 0:
            if key_dtypes is None and all(k in part.columns for k in keys):
                key_dtypes = [part.columns[k].dtype for k in keys]
            continue
        key_arrays = [part.columns[k] for k in keys]
        if key_dtypes is None:
            key_dtypes = [arr.dtype for arr in key_arrays]
        for spec_index, spec in enumerate(specs):
            values = (
                None if spec.column == "*" else part.columns[spec.column]
            )
            uniques, partials, counts = partial_aggregate(
                key_arrays, values, spec.kind
            )
            for key, partial, cnt in zip(uniques, partials, counts):
                slot = state.get(key)
                if slot is None:
                    slot = [_State(s.kind) for s in specs]
                    state[key] = slot
                slot[spec_index].update(partial, int(cnt))
        if meter is not None:
            new_nbytes = _estimate_state_nbytes(state, len(specs))
            meter.allocate(new_nbytes - state_nbytes)
            state_nbytes = new_nbytes

    out = _state_to_partition(state, keys, key_dtypes, specs)
    if meter is not None:
        meter.release(state_nbytes)
        meter.allocate(out.nbytes)
    try:
        yield out
    finally:
        if meter is not None:
            meter.release(out.nbytes)


def _estimate_state_nbytes(state: dict, num_specs: int) -> int:
    # key tuple (~24B/elem) + accumulator objects (~56B each) + dict slot
    return len(state) * (64 + 24 * 2 + 56 * num_specs)


def _state_to_partition(state, keys, key_dtypes, specs) -> Partition:
    if not state:
        cols = {k: np.empty(0) for k in keys}
        cols.update({s.out_name: np.empty(0) for s in specs})
        return Partition(cols)
    key_rows = list(state.keys())
    columns = {}
    for i, key_name in enumerate(keys):
        values = [row[i] for row in key_rows]
        arr = np.asarray(values)
        if key_dtypes is not None and key_dtypes[i].kind in "iu":
            arr = arr.astype(np.int64)
        columns[key_name] = arr
    for spec_index, spec in enumerate(specs):
        columns[spec.out_name] = np.asarray(
            [state[row][spec_index].result() for row in key_rows]
        )
    return Partition(columns)


def _run_join(node: P.Join, meter):
    # Build side: fully materialize the right input (broadcast join).
    right_parts = list(iter_partitions(node.right, meter))
    right_parts = [p for p in right_parts if p.num_rows > 0]
    build_nbytes = sum(p.nbytes for p in right_parts)
    if meter is not None:
        meter.allocate(build_nbytes)
    try:
        if right_parts:
            right = Partition.concat(right_parts)
        else:
            right = None
        table: dict = {}
        if right is not None:
            key_cols = [right.columns[k] for k in node.on]
            for i in range(right.num_rows):
                key = tuple(c[i] for c in key_cols)
                table.setdefault(key, []).append(i)
        right_value_names = (
            [n for n in right.columns if n not in node.on] if right is not None else []
        )

        for part in iter_partitions(node.left, meter):
            if part.num_rows == 0:
                continue
            left_keys = [part.columns[k] for k in node.on]
            left_idx: list[int] = []
            right_idx: list[int] = []
            unmatched: list[int] = []
            for i in range(part.num_rows):
                key = tuple(c[i] for c in left_keys)
                matches = table.get(key)
                if matches:
                    left_idx.extend([i] * len(matches))
                    right_idx.extend(matches)
                elif node.how == "left":
                    unmatched.append(i)
            columns = {}
            li = np.asarray(left_idx, dtype=np.int64)
            for name, arr in part.columns.items():
                columns[name] = arr[li]
            ri = np.asarray(right_idx, dtype=np.int64)
            for name in right_value_names:
                columns[name] = right.columns[name][ri]
            matched_part = Partition(columns)
            if node.how == "left" and unmatched:
                ui = np.asarray(unmatched, dtype=np.int64)
                null_cols = {
                    name: arr[ui] for name, arr in part.columns.items()
                }
                for name in right_value_names:
                    null_cols[name] = np.full(len(ui), np.nan)
                matched_part = Partition.concat(
                    [matched_part, Partition(null_cols)]
                )
            yield matched_part
    finally:
        if meter is not None:
            meter.release(build_nbytes)


def _run_order_by(node: P.OrderBy, meter):
    parts = [p for p in iter_partitions(node.child, meter) if p.num_rows > 0]
    if not parts:
        return
    whole = Partition.concat(parts)
    if meter is not None:
        meter.allocate(whole.nbytes)
    try:
        key_arrays = [whole.columns[k] for k in reversed(node.keys)]
        order = np.lexsort(key_arrays)
        if not node.ascending:
            order = order[::-1]
        yield Partition(
            {name: arr[order] for name, arr in whole.columns.items()}
        )
    finally:
        if meter is not None:
            meter.release(whole.nbytes)


def _run_repartition(node: P.Repartition, meter):
    parts = [p for p in iter_partitions(node.child, meter) if p.num_rows > 0]
    if not parts:
        return
    whole = Partition.concat(parts)
    n = whole.num_rows
    k = max(1, int(node.num_partitions))
    bounds = np.linspace(0, n, k + 1).astype(int)
    for start, stop in zip(bounds[:-1], bounds[1:]):
        if stop > start:
            yield Partition(
                {
                    name: arr[start:stop]
                    for name, arr in whole.columns.items()
                }
            )


def plan_column_names(node: P.PlanNode) -> list[str]:
    """Statically derive output column names of a plan."""
    if isinstance(node, P.Source):
        return list(node.schema.names)
    if isinstance(node, P.Project):
        return [name for name, _ in node.exprs]
    if isinstance(node, (P.Filter, P.Limit, P.OrderBy, P.Repartition)):
        return plan_column_names(node.children[0])
    if isinstance(node, P.WithColumn):
        base = plan_column_names(node.child)
        return base + ([node.name] if node.name not in base else [])
    if isinstance(node, P.Drop):
        dropped = set(node.names)
        return [n for n in plan_column_names(node.child) if n not in dropped]
    if isinstance(node, P.Union):
        return plan_column_names(node.inputs[0])
    if isinstance(node, P.GroupByAgg):
        return list(node.keys) + [a.out_name for a in node.aggs]
    if isinstance(node, P.Join):
        left = plan_column_names(node.left)
        right = [
            n for n in plan_column_names(node.right) if n not in node.on
        ]
        return left + right
    if isinstance(node, P.MapPartitions):
        return plan_column_names(node.child)  # best effort
    if isinstance(node, P.Cache):
        return plan_column_names(node.child)
    raise TypeError(f"unknown plan node {type(node).__name__}")
