"""Column expressions evaluated vectorized over partitions."""

from __future__ import annotations

import numpy as np

from repro.engine.partition import Partition


class CompileError(TypeError):
    """Raised when an expression tree cannot be lowered to a flat
    postfix program (unknown node type, non-ufunc operator).  The
    stage compiler catches it and keeps the interpreted path."""


class Expr:
    """Base expression node.  Supports arithmetic/comparison operators
    that build larger expressions, PySpark-style:

    >>> (col("fare") * lit(1.1)).alias("fare_with_tip")  # doctest: +SKIP
    """

    name: str = "expr"

    def evaluate(self, partition: Partition) -> np.ndarray:
        raise NotImplementedError

    def alias(self, name: str) -> "Expr":
        return Alias(self, name)

    # -- static introspection (used by the plan optimizer) --------------
    def references(self) -> set:
        """Names of the columns this expression reads."""
        return set()

    def has_udf(self) -> bool:
        """Whether a user function occurs anywhere in the tree.  UDFs
        are treated as expensive/opaque: the optimizer never duplicates
        them via substitution."""
        return False

    def substitute(self, mapping: dict) -> "Expr":
        """Return a copy with ``Column`` references replaced by the
        expressions in ``mapping`` (names absent from the mapping are
        left as-is)."""
        return self

    def emit(self, program: list) -> None:
        """Append this node's flat postfix instructions to ``program``
        (see :mod:`repro.engine.compile` for the instruction set).
        Subclasses that cannot be lowered raise :class:`CompileError`,
        which makes the stage compiler fall back to tree-walking
        interpretation for the whole chain."""
        raise CompileError(
            f"{type(self).__name__} has no postfix lowering"
        )

    # -- operator sugar -------------------------------------------------
    def _binary(self, other, fn, symbol):
        other = other if isinstance(other, Expr) else Literal(other)
        return BinaryOp(self, other, fn, symbol)

    def __add__(self, other):
        return self._binary(other, np.add, "+")

    def __radd__(self, other):
        return Literal(other)._binary(self, np.add, "+")

    def __sub__(self, other):
        return self._binary(other, np.subtract, "-")

    def __rsub__(self, other):
        return Literal(other)._binary(self, np.subtract, "-")

    def __mul__(self, other):
        return self._binary(other, np.multiply, "*")

    def __rmul__(self, other):
        return Literal(other)._binary(self, np.multiply, "*")

    def __truediv__(self, other):
        return self._binary(other, np.divide, "/")

    def __mod__(self, other):
        return self._binary(other, np.mod, "%")

    def __floordiv__(self, other):
        return self._binary(other, np.floor_divide, "//")

    def __gt__(self, other):
        return self._binary(other, np.greater, ">")

    def __ge__(self, other):
        return self._binary(other, np.greater_equal, ">=")

    def __lt__(self, other):
        return self._binary(other, np.less, "<")

    def __le__(self, other):
        return self._binary(other, np.less_equal, "<=")

    def __eq__(self, other):  # noqa: D105 — expression equality builds a predicate
        return self._binary(other, np.equal, "==")

    def __ne__(self, other):
        return self._binary(other, np.not_equal, "!=")

    __hash__ = None

    def __and__(self, other):
        return self._binary(other, np.logical_and, "&")

    def __or__(self, other):
        return self._binary(other, np.logical_or, "|")

    def __invert__(self):
        return UnaryOp(self, np.logical_not, "~")

    def __neg__(self):
        return UnaryOp(self, np.negative, "-")


class Column(Expr):
    """Reference to an existing column."""

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, partition: Partition) -> np.ndarray:
        if self.name not in partition.columns:
            raise KeyError(
                f"column {self.name!r} not found; available: "
                f"{list(partition.columns)}"
            )
        return partition.columns[self.name]

    def references(self) -> set:
        return {self.name}

    def substitute(self, mapping: dict) -> Expr:
        return mapping.get(self.name, self)

    def emit(self, program: list) -> None:
        program.append(("col", self.name))

    def __repr__(self):
        return f"col({self.name!r})"


class Literal(Expr):
    """A constant broadcast to the partition length."""

    def __init__(self, value):
        self.value = value
        self.name = f"lit({value!r})"

    def evaluate(self, partition: Partition) -> np.ndarray:
        if isinstance(self.value, str):
            out = np.empty(partition.num_rows, dtype=object)
            out[:] = self.value
            return out
        return np.full(partition.num_rows, self.value)

    def emit(self, program: list) -> None:
        program.append(("lit", self.value))

    def __repr__(self):
        return self.name


class BinaryOp(Expr):
    def __init__(self, left: Expr, right: Expr, fn, symbol: str):
        self.left = left
        self.right = right
        self.fn = fn
        self.symbol = symbol
        self.name = f"({left.name} {symbol} {right.name})"

    def evaluate(self, partition: Partition) -> np.ndarray:
        return self.fn(self.left.evaluate(partition), self.right.evaluate(partition))

    def references(self) -> set:
        return self.left.references() | self.right.references()

    def has_udf(self) -> bool:
        return self.left.has_udf() or self.right.has_udf()

    def substitute(self, mapping: dict) -> Expr:
        return BinaryOp(
            self.left.substitute(mapping),
            self.right.substitute(mapping),
            self.fn,
            self.symbol,
        )

    def emit(self, program: list) -> None:
        if not isinstance(self.fn, np.ufunc):
            raise CompileError(f"binary op {self.symbol!r} is not a ufunc")
        self.left.emit(program)
        self.right.emit(program)
        program.append(("ufunc", self.fn, 2))

    def __repr__(self):
        return self.name


class UnaryOp(Expr):
    def __init__(self, operand: Expr, fn, symbol: str):
        self.operand = operand
        self.fn = fn
        self.symbol = symbol
        self.name = f"({symbol}{operand.name})"

    def evaluate(self, partition: Partition) -> np.ndarray:
        return self.fn(self.operand.evaluate(partition))

    def references(self) -> set:
        return self.operand.references()

    def has_udf(self) -> bool:
        return self.operand.has_udf()

    def substitute(self, mapping: dict) -> Expr:
        return UnaryOp(self.operand.substitute(mapping), self.fn, self.symbol)

    def emit(self, program: list) -> None:
        if not isinstance(self.fn, np.ufunc):
            raise CompileError(f"unary op {self.symbol!r} is not a ufunc")
        self.operand.emit(program)
        program.append(("ufunc", self.fn, 1))

    def __repr__(self):
        return self.name


class Alias(Expr):
    def __init__(self, inner: Expr, name: str):
        self.inner = inner
        self.name = name

    def evaluate(self, partition: Partition) -> np.ndarray:
        return self.inner.evaluate(partition)

    def references(self) -> set:
        return self.inner.references()

    def has_udf(self) -> bool:
        return self.inner.has_udf()

    def substitute(self, mapping: dict) -> Expr:
        return Alias(self.inner.substitute(mapping), self.name)

    def emit(self, program: list) -> None:
        self.inner.emit(program)

    def __repr__(self):
        return f"{self.inner!r}.alias({self.name!r})"


class VectorUdf(Expr):
    """A user function applied to whole column arrays at once."""

    def __init__(self, fn, inputs, name: str | None = None):
        self.fn = fn
        self.inputs = [i if isinstance(i, Expr) else Column(i) for i in inputs]
        self.name = name or getattr(fn, "__name__", "udf")

    def references(self) -> set:
        refs: set = set()
        for expr in self.inputs:
            refs |= expr.references()
        return refs

    def has_udf(self) -> bool:
        return True

    def substitute(self, mapping: dict) -> Expr:
        return VectorUdf(
            self.fn,
            [expr.substitute(mapping) for expr in self.inputs],
            name=self.name,
        )

    def emit(self, program: list) -> None:
        for expr in self.inputs:
            expr.emit(program)
        program.append(("udf", self.fn, len(self.inputs), self.name))

    def evaluate(self, partition: Partition) -> np.ndarray:
        args = [expr.evaluate(partition) for expr in self.inputs]
        result = self.fn(*args)
        result = np.asarray(result) if not isinstance(result, np.ndarray) else result
        if result.shape[:1] != (partition.num_rows,):
            raise ValueError(
                f"udf {self.name!r} returned {result.shape[0] if result.ndim else 0} "
                f"rows for a {partition.num_rows}-row partition"
            )
        return result


def col(name: str) -> Column:
    """Reference a column by name."""
    return Column(name)


def lit(value) -> Literal:
    """A literal constant expression."""
    return Literal(value)


def udf(fn, inputs, name: str | None = None) -> VectorUdf:
    """Wrap a vectorized function of column arrays as an expression."""
    return VectorUdf(fn, inputs, name=name)
