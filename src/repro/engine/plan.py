"""Logical plan nodes.

A DataFrame is a tree of these nodes; the executor walks the tree and
streams partitions through it.  Nodes are immutable descriptions —
nothing here touches data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.expressions import Expr
from repro.engine.schema import Schema


class PlanNode:
    """Base class for logical plan nodes."""

    children: tuple = ()

    def describe(self, indent: int = 0) -> str:
        """Readable plan tree (``DataFrame.explain`` output)."""
        pad = "  " * indent
        lines = [f"{pad}{self._label()}"]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return self.__class__.__name__


@dataclass
class Source(PlanNode):
    """Leaf: a list of zero-arg callables, each producing a Partition.

    Deferring partition construction behind callables is what lets CSV
    scans and generators stay out-of-core: a partition exists only
    while it flows through the operator chain.
    """

    partition_factories: list
    schema: Schema
    children: tuple = ()

    def _label(self):
        return f"Source[{len(self.partition_factories)} partitions]"


@dataclass
class StreamingSource(PlanNode):
    """Leaf: an append-only sequence of ingested micro-batches.

    Unlike :class:`Source`, the partitions are *materialized* and the
    list grows over time — ``Stream.append`` adds one Partition per
    micro-batch, and every execution replays the batches retained so
    far.  Partition boundaries therefore coincide with ingestion
    boundaries, which is the property the incremental streaming layer
    leans on: a full recompute over this node merges per-batch partial
    aggregates in exactly the order the delta-maintained state did, so
    the two are bit-identical (see :mod:`repro.engine.streaming`).
    """

    schema: Schema
    batches: list = field(default_factory=list)
    children: tuple = ()

    def append(self, partition) -> None:
        self.batches.append(partition)

    @property
    def num_rows(self) -> int:
        return sum(p.num_rows for p in self.batches)

    def _label(self):
        return f"StreamingSource[{len(self.batches)} batches]"


@dataclass
class Project(PlanNode):
    child: PlanNode
    exprs: list  # list of (name, Expr)

    def __post_init__(self):
        self.children = (self.child,)

    def _label(self):
        return f"Project[{', '.join(name for name, _ in self.exprs)}]"


@dataclass
class Filter(PlanNode):
    child: PlanNode
    predicate: Expr

    def __post_init__(self):
        self.children = (self.child,)

    def _label(self):
        return f"Filter[{self.predicate.name}]"


@dataclass
class WithColumn(PlanNode):
    child: PlanNode
    name: str
    expr: Expr

    def __post_init__(self):
        self.children = (self.child,)

    def _label(self):
        return f"WithColumn[{self.name}]"


@dataclass
class WithColumns(PlanNode):
    """Several :class:`WithColumn` steps fused into one operator.

    Produced by the optimizer (never by the DataFrame API): the items
    are evaluated sequentially against the growing partition, so a
    chain costs one operator dispatch per partition instead of one per
    added column.
    """

    child: PlanNode
    items: list  # list of (name, Expr), applied in order

    def __post_init__(self):
        self.children = (self.child,)

    def _label(self):
        return f"WithColumns[{', '.join(name for name, _ in self.items)}]"


@dataclass
class Drop(PlanNode):
    child: PlanNode
    names: list

    def __post_init__(self):
        self.children = (self.child,)

    def _label(self):
        return f"Drop[{', '.join(self.names)}]"


@dataclass
class CompiledStage(PlanNode):
    """A maximal chain of narrow operators fused into one compiled
    physical stage (see :mod:`repro.engine.compile`).

    Produced by the physical-planning pass (never by the DataFrame
    API): ``steps`` is the ordered list of ``("filter", Expr)`` /
    ``("project", [(name, Expr)])`` / ``("with_columns", [(name,
    Expr)])`` / ``("drop", [names])`` steps, applied bottom-up.  The
    executor runs the whole chain as one per-partition call —
    predicate first, selection applied once, projections computed over
    surviving rows only — and the morsel-parallel mode fans these
    calls out across a thread pool.
    """

    child: PlanNode
    steps: list

    def __post_init__(self):
        self.children = (self.child,)
        self._runner = None  # built lazily by repro.engine.compile

    def _label(self):
        bits = []
        for kind, payload in self.steps:
            if kind == "filter":
                bits.append(f"Filter({payload.name})")
            elif kind == "project":
                bits.append(
                    f"Project({', '.join(name for name, _ in payload)})"
                )
            elif kind == "with_columns":
                bits.append(
                    f"WithColumns({', '.join(name for name, _ in payload)})"
                )
            else:
                bits.append(f"Drop({', '.join(payload)})")
        return f"CompiledStage[{' -> '.join(bits)}]"


@dataclass
class Union(PlanNode):
    inputs: list

    def __post_init__(self):
        self.children = tuple(self.inputs)

    def _label(self):
        return f"Union[{len(self.inputs)} inputs]"


@dataclass
class Limit(PlanNode):
    child: PlanNode
    n: int

    def __post_init__(self):
        self.children = (self.child,)

    def _label(self):
        return f"Limit[{self.n}]"


@dataclass
class GroupByAgg(PlanNode):
    child: PlanNode
    keys: list
    aggs: list  # list of AggSpec

    def __post_init__(self):
        self.children = (self.child,)

    def _label(self):
        outs = ", ".join(a.out_name for a in self.aggs)
        return f"GroupByAgg[keys={self.keys}, aggs=({outs})]"


@dataclass
class Join(PlanNode):
    left: PlanNode
    right: PlanNode
    on: list
    how: str = "inner"

    def __post_init__(self):
        self.children = (self.left, self.right)
        if self.how not in ("inner", "left"):
            raise ValueError(f"unsupported join type {self.how!r}")

    def _label(self):
        return f"Join[{self.how}, on={self.on}]"


@dataclass
class OrderBy(PlanNode):
    child: PlanNode
    keys: list
    ascending: bool = True

    def __post_init__(self):
        self.children = (self.child,)

    def _label(self):
        direction = "asc" if self.ascending else "desc"
        return f"OrderBy[{self.keys} {direction}]"


@dataclass
class MapPartitions(PlanNode):
    """Apply ``fn(Partition) -> Partition`` to every partition."""

    child: PlanNode
    fn: object
    label: str = "map_partitions"

    def __post_init__(self):
        self.children = (self.child,)

    def _label(self):
        return f"MapPartitions[{self.label}]"


@dataclass
class Repartition(PlanNode):
    child: PlanNode
    num_partitions: int

    def __post_init__(self):
        self.children = (self.child,)

    def _label(self):
        return f"Repartition[{self.num_partitions}]"


@dataclass
class Cache(PlanNode):
    """Materialize the child's partitions on first execution and
    replay them on later executions (Spark's ``persist``).

    Trades memory (the cached partitions stay resident) for skipping
    upstream recomputation — worthwhile when a DataFrame is iterated
    once per training epoch.
    """

    child: PlanNode

    def __post_init__(self):
        self.children = (self.child,)
        self.materialized: list | None = None

    def _label(self):
        state = "hot" if self.materialized is not None else "cold"
        return f"Cache[{state}]"
