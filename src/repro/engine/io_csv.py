"""Partitioned CSV scan and write."""

from __future__ import annotations

import csv
import itertools

import numpy as np

from repro.engine.partition import Partition
from repro.engine.schema import Field, Schema


def infer_csv_schema(path: str, header: bool = True, sample_rows: int = 100) -> Schema:
    """Infer a schema by sampling leading rows.

    Ints that stay ints become int64; anything parseable as float
    becomes float64; everything else is object.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        first = next(reader)
        names = first if header else [f"c{i}" for i in range(len(first))]
        sample = list(itertools.islice(reader, sample_rows))
        if not header:
            sample.insert(0, first)
    fields = []
    for i, name in enumerate(names):
        values = [row[i] for row in sample if i < len(row)]
        fields.append(Field(name, _infer_dtype(values)))
    return Schema(fields)


def _infer_dtype(values) -> np.dtype:
    if not values:
        return np.dtype(object)
    is_int = True
    is_float = True
    for v in values:
        try:
            int(v)
        except ValueError:
            is_int = False
            try:
                float(v)
            except ValueError:
                is_float = False
                break
    if is_int:
        return np.dtype(np.int64)
    if is_float:
        return np.dtype(np.float64)
    return np.dtype(object)


def _count_data_rows(path: str, header: bool) -> int:
    with open(path, "rb") as handle:
        total = sum(1 for _ in handle)
    return total - (1 if header else 0)


def csv_partition_factories(
    path: str,
    schema: Schema,
    rows_per_partition: int = 100_000,
    header: bool = True,
) -> list:
    """Build deferred readers, one per row-range of the file."""
    total = _count_data_rows(path, header)
    factories = []
    for start in range(0, max(total, 1), rows_per_partition):
        stop = min(start + rows_per_partition, total)
        factories.append(
            lambda s=start, e=stop: _read_range(path, schema, s, e, header)
        )
    return factories


def _read_range(path: str, schema: Schema, start: int, stop: int, header: bool) -> Partition:
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        if header:
            next(reader, None)
        rows = list(itertools.islice(reader, start, stop))
    columns = {}
    for i, field in enumerate(schema.fields):
        raw = [row[i] for row in rows]
        if field.dtype.kind == "i":
            columns[field.name] = np.asarray(raw, dtype=np.int64)
        elif field.dtype.kind == "f":
            columns[field.name] = np.asarray(raw, dtype=np.float64)
        else:
            arr = np.empty(len(raw), dtype=object)
            arr[:] = raw
            columns[field.name] = arr
    if not columns:
        return Partition.empty(schema)
    return Partition(columns)


def write_csv(df, path: str) -> int:
    """Write a DataFrame to one CSV file; returns the row count."""
    names = df.columns
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for part in df.iter_partitions():
            for row in part.rows():
                writer.writerow([row[name] for name in names])
                count += 1
    return count
