"""Spill-to-disk: out-of-core execution for materializing operators.

The engine's narrow operators stream with an O(partition) working set,
but the materializing operators — ``order_by``, ``repartition``, the
join build side, ``cache`` — buffer their whole input.  A
:class:`SpillManager` (owned by ``Session(memory_budget=...)``) lets
them trade that residency for disk: partitions are serialized to a
compact columnar on-disk format and restored on demand, so datasets
larger than the budget still execute — the Spark/Petastorm behaviour
the DESIGN substitution promises (PAPER.md §2, Fig 8).

**On-disk format.**  One directory per spilled partition, one file per
column: ``c<i>.npy`` (``np.save`` with ``allow_pickle=False``) for
numeric/bool/datetime columns, ``c<i>.pkl`` (pickle of the object
ndarray) for object columns — strings, geometries.  Column names,
dtypes and the row count live on the in-memory :class:`SpillHandle`,
so a restore validates shape and dtype against what was written and a
truncated or corrupted file surfaces as :class:`SpillError`, never as
a numpy traceback deep inside an operator.

**Lifecycle.**  The spill directory is created lazily under the system
temp dir (or ``Session(spill_dir=...)``), removed by
``Session.close()`` / context-manager exit, and — via
``weakref.finalize`` — at interpreter exit even when nobody closed the
session.  A failed write cleans up its partial files and leaves the
manager usable; restores are thread-safe (``Session(parallelism=N)``
morsel workers may restore concurrently).

**Accounting.**  All activity is counted both on the manager
(``bytes_written`` / ``bytes_restored`` / ``files_written`` /
``spill_seconds`` / ``restore_seconds``) and, when :mod:`repro.obs`
is enabled, in the process-wide registry under ``engine.spill.*``.
The executor additionally credits spilled bytes to the operator that
spilled them, which ``explain(analyze=True)`` renders as
``spilled=<bytes>``.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import threading
import time
import weakref

import numpy as np

from repro.engine.partition import Partition


def _tracer():
    from repro import obs

    return obs.tracer


class SpillError(RuntimeError):
    """A spill write or restore failed (disk full, corrupted or
    truncated spill file, unexpected on-disk contents)."""


#: Every live SpillManager, so the telemetry resource sampler can sum
#: process-wide spill totals each tick without owning the sessions.
_LIVE_MANAGERS: "weakref.WeakSet[SpillManager]" = weakref.WeakSet()


def live_spill_totals() -> dict:
    """Aggregate counters across all live spill managers (gauges
    published as ``engine.spill.*`` by the resource sampler)."""
    totals = {
        "live_managers": 0,
        "live_bytes_written": 0,
        "live_bytes_restored": 0,
        "live_partitions": 0,
    }
    for manager in list(_LIVE_MANAGERS):
        totals["live_managers"] += 1
        totals["live_bytes_written"] += manager.bytes_written
        totals["live_bytes_restored"] += manager.bytes_restored
        totals["live_partitions"] += manager.partitions_spilled
    return totals


class SpillHandle:
    """In-memory descriptor of one spilled partition.

    Everything needed to validate a restore travels on the handle —
    only column payloads live on disk.
    """

    __slots__ = ("path", "num_rows", "nbytes", "columns")

    def __init__(self, path: str, num_rows: int, nbytes: int, columns: list):
        self.path = path
        self.num_rows = num_rows
        self.nbytes = nbytes  # in-memory estimate of the partition
        self.columns = columns  # list of (name, kind, dtype)

    def __repr__(self):
        return f"SpillHandle[{self.path}, rows={self.num_rows}]"


class SpillManager:
    """Serializes partitions to a temp directory and restores them.

    One manager per :class:`~repro.engine.session.Session`; the
    ``budget`` (bytes) is advisory state the executor's materializing
    operators consult to decide *when* to spill — the manager itself
    only moves partitions to and from disk.
    """

    def __init__(self, budget: int | None = None, root: str | None = None):
        if budget is not None and int(budget) < 0:
            raise ValueError("memory budget must be >= 0")
        self.budget = None if budget is None else int(budget)
        self._root_hint = root
        self._dir: str | None = None
        self._finalizer = None
        self._lock = threading.Lock()
        self._seq = 0
        self.partitions_spilled = 0
        self.files_written = 0
        self.bytes_written = 0
        self.bytes_restored = 0
        self.spill_seconds = 0.0
        self.restore_seconds = 0.0
        _LIVE_MANAGERS.add(self)

    # ------------------------------------------------------------------
    # Directory lifecycle
    # ------------------------------------------------------------------
    @property
    def directory(self) -> str | None:
        """The spill directory, or None if nothing has spilled yet."""
        return self._dir

    def _ensure_dir(self) -> str:
        with self._lock:
            if self._dir is None:
                try:
                    self._dir = tempfile.mkdtemp(
                        prefix="repro-spill-", dir=self._root_hint
                    )
                except OSError as exc:
                    raise SpillError(
                        f"cannot create spill directory: {exc}"
                    ) from exc
                # Interpreter-exit safety net: the temp dir dies with
                # the manager even when close() is never called.
                self._finalizer = weakref.finalize(
                    self, shutil.rmtree, self._dir, ignore_errors=True
                )
            return self._dir

    def close(self) -> None:
        """Delete the spill directory and all spilled partitions."""
        with self._lock:
            finalizer, self._finalizer = self._finalizer, None
            self._dir = None
        if finalizer is not None:
            finalizer()

    # ------------------------------------------------------------------
    # Spill / restore / release
    # ------------------------------------------------------------------
    def spill(self, part: Partition) -> SpillHandle:
        """Write one partition to disk, returning its handle.

        On any failure the partial spill directory is removed and a
        :class:`SpillError` is raised; the manager stays usable.
        """
        started = time.perf_counter()
        # Spill I/O is part of the query's trace: the span nests under
        # whatever is open on the calling thread (normally the
        # engine.query span on the driver).
        with _tracer().span("engine.spill.write") as span:
            root = self._ensure_dir()
            with self._lock:
                seq = self._seq
                self._seq += 1
            pdir = os.path.join(root, f"p{seq:06d}")
            meta: list = []
            written = 0
            files = 0
            try:
                os.mkdir(pdir)
                for i, (name, arr) in enumerate(part.columns.items()):
                    if arr.dtype == object:
                        fpath = os.path.join(pdir, f"c{i}.pkl")
                        with open(fpath, "wb") as handle:
                            pickle.dump(
                                arr, handle, protocol=pickle.HIGHEST_PROTOCOL
                            )
                        meta.append((name, "pkl", arr.dtype))
                    else:
                        fpath = os.path.join(pdir, f"c{i}.npy")
                        with open(fpath, "wb") as handle:
                            np.save(handle, arr, allow_pickle=False)
                        meta.append((name, "npy", arr.dtype))
                    written += os.path.getsize(fpath)
                    files += 1
            except Exception as exc:
                shutil.rmtree(pdir, ignore_errors=True)
                raise SpillError(
                    f"failed to spill partition to {pdir}: {exc}"
                ) from exc
            span.add("bytes", written)
            span.add("rows", part.num_rows)
        elapsed = time.perf_counter() - started
        with self._lock:
            self.partitions_spilled += 1
            self.files_written += files
            self.bytes_written += written
            self.spill_seconds += elapsed
        self._record("bytes_written", written)
        self._record("files", files)
        self._record("partitions", 1)
        return SpillHandle(pdir, part.num_rows, part.nbytes, meta)

    def restore(self, handle: SpillHandle) -> Partition:
        """Read one spilled partition back, validating row counts and
        dtypes against the handle.  Thread-safe; the files stay on
        disk (``cache`` replays handles repeatedly) until
        :meth:`release`."""
        started = time.perf_counter()
        columns: dict = {}
        with _tracer().span("engine.spill.read") as span:
            for i, (name, kind, dtype) in enumerate(handle.columns):
                fpath = os.path.join(handle.path, f"c{i}.{kind}")
                try:
                    if kind == "pkl":
                        with open(fpath, "rb") as fh:
                            arr = pickle.load(fh)
                    else:
                        arr = np.load(fpath, allow_pickle=False)
                except SpillError:
                    raise
                except Exception as exc:
                    raise SpillError(
                        f"failed to restore spilled column {name!r} "
                        f"from {fpath}: {exc}"
                    ) from exc
                if not isinstance(arr, np.ndarray) or arr.dtype != dtype:
                    raise SpillError(
                        f"spill file {fpath} holds "
                        f"{getattr(arr, 'dtype', type(arr))}, "
                        f"expected {dtype} (corrupted spill?)"
                    )
                if len(arr) != handle.num_rows:
                    raise SpillError(
                        f"spill file {fpath} holds {len(arr)} rows, "
                        f"expected {handle.num_rows} (truncated spill?)"
                    )
                columns[name] = arr
            span.add("bytes", handle.nbytes)
            span.add("rows", handle.num_rows)
        elapsed = time.perf_counter() - started
        with self._lock:
            self.bytes_restored += handle.nbytes
            self.restore_seconds += elapsed
        self._record("bytes_restored", handle.nbytes)
        self._record("restore_seconds", elapsed)
        return Partition._from_arrays(columns, handle.num_rows)

    def release(self, handle: SpillHandle) -> None:
        """Delete one spilled partition's files."""
        shutil.rmtree(handle.path, ignore_errors=True)

    @staticmethod
    def _record(suffix: str, amount) -> None:
        from repro import obs

        obs.registry.counter(f"engine.spill.{suffix}").inc(amount)

    def stats(self) -> dict:
        """Counters snapshot (tests, benchmarks)."""
        with self._lock:
            return {
                "partitions_spilled": self.partitions_spilled,
                "files_written": self.files_written,
                "bytes_written": self.bytes_written,
                "bytes_restored": self.bytes_restored,
                "spill_seconds": self.spill_seconds,
                "restore_seconds": self.restore_seconds,
            }


class SpillableBuffer:
    """An append-then-replay partition buffer with bounded residency.

    Partitions are kept in memory until the running in-memory total
    would exceed ``budget``; from then on incoming partitions spill to
    disk.  :meth:`replay` yields the partitions back in insertion
    order (restoring spilled ones on the fly), any number of times.
    Used by the executor's ``cache`` / ``repartition`` / join probe
    buffering.
    """

    def __init__(self, manager: SpillManager, budget: int | None):
        self._manager = manager
        self._budget = budget
        self._entries: list = []  # Partition | SpillHandle
        self.in_memory_bytes = 0
        self.spilled_bytes = 0
        self.num_rows = 0

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, part: Partition) -> int:
        """Add one partition; returns bytes spilled (0 if kept)."""
        self.num_rows += part.num_rows
        nbytes = part.nbytes
        if (
            self._budget is not None
            and self.in_memory_bytes + nbytes > self._budget
        ):
            handle = self._manager.spill(part)
            self._entries.append(handle)
            self.spilled_bytes += nbytes
            return nbytes
        self._entries.append(part)
        self.in_memory_bytes += nbytes
        return 0

    def replay(self):
        """Yield the buffered partitions in insertion order."""
        for entry in self._entries:
            if isinstance(entry, SpillHandle):
                yield self._manager.restore(entry)
            else:
                yield entry

    def entry_rows(self) -> list:
        return [entry.num_rows for entry in self._entries]

    def release(self) -> None:
        """Drop in-memory partitions and delete spilled files."""
        for entry in self._entries:
            if isinstance(entry, SpillHandle):
                self._manager.release(entry)
        self._entries.clear()
        self.in_memory_bytes = 0
