"""Columnar partitions: the unit of parallelism and memory accounting."""

from __future__ import annotations

import numpy as np

from repro.engine.schema import Field, Schema
from repro.utils.memory import approx_nbytes


class Partition:
    """A horizontal slice of a DataFrame stored column-wise.

    Columns are numpy arrays of equal length (``object`` dtype for
    strings / geometries).  All operators act on whole columns, so the
    per-row interpreter overhead stays out of the hot path.
    """

    __slots__ = ("columns", "num_rows")

    def __init__(self, columns: dict):
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"column lengths differ: {lengths}")
        self.columns = {
            name: np.asarray(values) for name, values in columns.items()
        }
        self.num_rows = lengths.pop() if lengths else 0

    @classmethod
    def from_rows(cls, rows, names) -> "Partition":
        """Build from an iterable of tuples/dicts."""
        rows = list(rows)
        if rows and isinstance(rows[0], dict):
            cols = {name: [r[name] for r in rows] for name in names}
        else:
            cols = {
                name: [r[i] for r in rows] for i, name in enumerate(names)
            }
        return cls({name: _best_array(values) for name, values in cols.items()})

    @classmethod
    def empty(cls, schema: Schema) -> "Partition":
        return cls(
            {f.name: np.empty(0, dtype=f.dtype) for f in schema.fields}
        )

    @classmethod
    def _from_arrays(cls, columns: dict, num_rows: int) -> "Partition":
        """Wrap already-validated numpy arrays without re-checking
        lengths (hot path: the compiled stage runner builds every
        output partition through here)."""
        part = cls.__new__(cls)
        part.columns = columns
        part.num_rows = num_rows
        return part

    @property
    def nbytes(self) -> int:
        """Approximate bytes held by this partition.

        Object columns count their element payloads (sampled, so the
        estimate stays O(1) per column) on top of the pointer array —
        a flat per-pointer constant undercounts string/geometry columns
        badly, which would let spill budgets overshoot by the payload
        size.
        """
        total = 0
        for arr in self.columns.values():
            if arr.dtype == object:
                total += arr.nbytes + _object_payload_bytes(arr)
            else:
                total += arr.nbytes
        return total

    def schema(self) -> Schema:
        return Schema(
            [Field(name, arr.dtype) for name, arr in self.columns.items()]
        )

    def select(self, names) -> "Partition":
        return Partition({name: self.columns[name] for name in names})

    def mask(self, keep: np.ndarray) -> "Partition":
        return Partition(
            {name: arr[keep] for name, arr in self.columns.items()}
        )

    def with_column(self, name: str, values: np.ndarray) -> "Partition":
        cols = dict(self.columns)
        cols[name] = values
        return Partition(cols)

    def drop(self, names) -> "Partition":
        names = set(names)
        return Partition(
            {n: a for n, a in self.columns.items() if n not in names}
        )

    def rows(self):
        """Iterate rows as dicts (slow path: display, tests)."""
        names = list(self.columns)
        arrays = [self.columns[n] for n in names]
        for i in range(self.num_rows):
            yield {name: arr[i] for name, arr in zip(names, arrays)}

    def take(self, n: int) -> "Partition":
        return Partition(
            {name: arr[:n] for name, arr in self.columns.items()}
        )

    @staticmethod
    def concat(partitions) -> "Partition":
        partitions = list(partitions)
        non_empty = [p for p in partitions if p.num_rows > 0]
        if not non_empty:
            if not partitions:
                raise ValueError("cannot concat zero partitions")
            # Every input is empty: the first input already carries the
            # schema (column names and dtypes), so return it as-is
            # instead of raising — callers need no special-casing.
            return partitions[0]
        names = list(non_empty[0].columns)
        return Partition(
            {
                name: np.concatenate([p.columns[name] for p in non_empty])
                for name in names
            }
        )


_PAYLOAD_SAMPLE = 32


def _object_payload_bytes(arr: np.ndarray) -> int:
    """Estimate the payload bytes behind an object column's pointers
    by sampling up to ``_PAYLOAD_SAMPLE`` evenly-strided elements."""
    n = arr.size
    if n == 0:
        return 0
    if n <= _PAYLOAD_SAMPLE:
        return int(sum(approx_nbytes(v) for v in arr))
    sample = arr[:: n // _PAYLOAD_SAMPLE][:_PAYLOAD_SAMPLE]
    mean = sum(approx_nbytes(v) for v in sample) / len(sample)
    return int(mean * n)


def _best_array(values: list) -> np.ndarray:
    """Coerce a python list to the tightest reasonable numpy array."""
    try:
        arr = np.asarray(values)
    except (ValueError, TypeError):
        arr = np.empty(len(values), dtype=object)
        arr[:] = values
        return arr
    if arr.dtype.kind in "OUS":
        out = np.empty(len(values), dtype=object)
        out[:] = values
        return out
    if arr.ndim != 1:
        out = np.empty(len(values), dtype=object)
        out[:] = values
        return out
    return arr
