"""Expression and stage compilation.

Two layers, both bit-identical to the tree-walking interpreter:

**Expression compiler.**  :func:`compile_expr` lowers an
:class:`~repro.engine.expressions.Expr` tree into a flat postfix
program — a list of ``("col", name)`` / ``("lit", value)`` /
``("ufunc", fn, nin)`` / ``("udf", fn, nargs, name)`` instructions —
executed by :class:`CompiledExpr` over a small value stack.  Evaluation
is a single flat loop (no Python recursion per partition) and, after a
one-partition warmup, runs chained *in-place* ufuncs over a pooled
scratch register set instead of allocating a fresh temporary per node:

- The first evaluation of each instruction records its input/output
  dtypes from the natural ``fn(a, b)`` call — the exact call the
  interpreter makes, so values match by construction.
- Later evaluations with the same operand dtypes replay through
  ``fn(a, b, out=buf)`` where ``buf`` is either a consumed scratch
  operand (in-place chaining) or a buffer from a per-thread pool.
  Because ``buf`` carries the *recorded natural result dtype*, numpy
  selects the same inner loop and writes the same bits.
- Literals materialize as full arrays exactly like
  ``Literal.evaluate`` (scalar operands would change NEP-50 dtype
  promotion), but are cached per partition length, so a literal costs
  one allocation per distinct length instead of one per partition.
- Anything the recorder cannot prove (dtype drift from a UDF,
  non-1-D operands) silently falls back to the natural call for that
  instruction, never to a wrong answer.

**Stage compiler.**  :func:`compile_stages` is the physical-planning
pass: it collapses each maximal chain of adjacent
Filter / Project / WithColumn / WithColumns / Drop nodes into a single
:class:`~repro.engine.plan.CompiledStage` node run by a
:class:`StageRunner`.  A stage evaluates its predicate first and
applies the selection *once*, copying only the columns live downstream
(selection-vector style), then computes projections over surviving
rows only — instead of one full-partition materialization per
operator.  Chains containing an expression the compiler cannot lower
(:class:`~repro.engine.expressions.CompileError`) are left as the
original interpreted operators.

Thread safety: a ``CompiledExpr`` may be evaluated concurrently by the
morsel-parallel executor, so scratch pools and the literal cache are
per-thread (``threading.local``); the dtype records are shared but
write-once-idempotent (concurrent recorders write identical values).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.engine import plan as P
from repro.engine.expressions import CompileError, Expr
from repro.engine.partition import Partition

__all__ = [
    "CompiledExpr",
    "StageRunner",
    "compile_expr",
    "compile_stages",
    "stage_runner",
]

#: Max pooled scratch buffers per (length, dtype) bucket, and max
#: distinct buckets before the pool is dropped wholesale.  Scratch is
#: transient — a cleared pool only costs re-allocation, never
#: correctness — so the bounds keep long runs with many distinct
#: partition lengths from hoarding memory.
_POOL_PER_KEY = 4
_POOL_MAX_KEYS = 16


class _Record:
    """Dtype signature of one ``ufunc`` instruction, learned from its
    first natural execution: replay is only attempted when the live
    operand dtypes match ``in_dtypes`` exactly."""

    __slots__ = ("in_dtypes", "out_dtype")

    def __init__(self, in_dtypes: tuple, out_dtype: np.dtype):
        self.in_dtypes = in_dtypes
        self.out_dtype = out_dtype


class CompiledExpr:
    """A flat postfix program over partition columns.

    ``evaluate(columns, num_rows)`` returns the same array (same
    values, same dtype, same aliasing behaviour for bare column
    references) as ``Expr.evaluate`` on a partition holding
    ``columns``.
    """

    __slots__ = ("program", "name", "_records", "_tls")

    def __init__(self, program: list, name: str = "expr"):
        self.program = program
        self.name = name
        self._records: list = [None] * len(program)
        self._tls = threading.local()

    def __repr__(self):
        return f"CompiledExpr[{len(self.program)} instrs: {self.name}]"

    # -- per-thread state ----------------------------------------------
    def _state(self):
        state = getattr(self._tls, "state", None)
        if state is None:
            state = self._tls.state = ({}, {})  # (scratch pool, lit cache)
        return state

    @staticmethod
    def _acquire(pool: dict, n: int, dtype) -> np.ndarray:
        bucket = pool.get((n, dtype))
        if bucket:
            return bucket.pop()
        return np.empty(n, dtype=dtype)

    @staticmethod
    def _release(pool: dict, arr: np.ndarray) -> None:
        if arr.ndim != 1 or arr.base is not None or not arr.flags.c_contiguous:
            return
        key = (arr.shape[0], arr.dtype)
        bucket = pool.get(key)
        if bucket is None:
            if len(pool) >= _POOL_MAX_KEYS:
                pool.clear()
            bucket = pool[key] = []
        if len(bucket) < _POOL_PER_KEY:
            bucket.append(arr)

    @staticmethod
    def _materialize_literal(cache: dict, value, n: int) -> np.ndarray:
        key = (id(value), n)
        arr = cache.get(key)
        if arr is None:
            # Mirror Literal.evaluate exactly: object arrays for
            # strings, np.full otherwise (a scalar operand would
            # promote differently under NEP 50).
            if isinstance(value, str):
                arr = np.empty(n, dtype=object)
                arr[:] = value
            else:
                arr = np.full(n, value)
            if len(cache) > 64:
                cache.clear()
            cache[key] = arr
        return arr

    # -- evaluation -----------------------------------------------------
    def evaluate(self, columns: dict, num_rows: int) -> np.ndarray:
        """Run the program against a dict of column arrays.

        ``stack`` holds ``(array, owned)`` pairs; ``owned`` marks
        arrays this evaluation allocated exclusively (safe to reuse as
        in-place ufunc outputs or recycle into the scratch pool).
        Column references, cached literals, and UDF results are never
        owned — a UDF may return one of its inputs unchanged.
        """
        pool, lit_cache = self._state()
        records = self._records
        stack: list = []
        for idx, instr in enumerate(self.program):
            kind = instr[0]
            if kind == "col":
                name = instr[1]
                arr = columns.get(name)
                if arr is None:
                    raise KeyError(
                        f"column {name!r} not found; available: "
                        f"{list(columns)}"
                    )
                stack.append((arr, False))
            elif kind == "lit":
                stack.append(
                    (self._materialize_literal(lit_cache, instr[1], num_rows), False)
                )
            elif kind == "ufunc":
                fn, nin = instr[1], instr[2]
                if nin == 2:
                    b, b_owned = stack.pop()
                    a, a_owned = stack.pop()
                    operands, in_dtypes = (a, b), (a.dtype, b.dtype)
                else:
                    a, a_owned = stack.pop()
                    b, b_owned = None, False
                    operands, in_dtypes = (a,), (a.dtype,)
                rec = records[idx]
                replayable = (
                    rec is not None
                    and rec.in_dtypes == in_dtypes
                    and all(
                        op.ndim == 1 and op.shape[0] == num_rows
                        for op in operands
                    )
                )
                if replayable:
                    out_dtype = rec.out_dtype
                    if a_owned and a.dtype == out_dtype:
                        out, a_owned = a, False
                    elif b_owned and b.dtype == out_dtype:
                        out, b_owned = b, False
                    else:
                        out = self._acquire(pool, num_rows, out_dtype)
                    fn(*operands, out=out)
                else:
                    out = fn(*operands)
                    if out.ndim == 1 and out.shape[0] == num_rows:
                        records[idx] = _Record(in_dtypes, out.dtype)
                    else:
                        records[idx] = None
                if a_owned:
                    self._release(pool, a)
                if b_owned:
                    self._release(pool, b)
                stack.append((out, True))
            else:  # "udf"
                fn, nargs, name = instr[1], instr[2], instr[3]
                args = [pair[0] for pair in stack[len(stack) - nargs :]]
                del stack[len(stack) - nargs :]
                result = fn(*args)
                result = (
                    np.asarray(result)
                    if not isinstance(result, np.ndarray)
                    else result
                )
                if result.shape[:1] != (num_rows,):
                    raise ValueError(
                        f"udf {name!r} returned "
                        f"{result.shape[0] if result.ndim else 0} "
                        f"rows for a {num_rows}-row partition"
                    )
                stack.append((result, False))
        return stack.pop()[0]


def compile_expr(expr: Expr) -> CompiledExpr:
    """Lower an expression tree to a :class:`CompiledExpr`.

    Raises :class:`~repro.engine.expressions.CompileError` for nodes
    with no postfix lowering — callers fall back to ``Expr.evaluate``.
    """
    program: list = []
    expr.emit(program)
    return CompiledExpr(program, name=expr.name)


# ----------------------------------------------------------------------
# Stage runner: one fused narrow chain, selection-vector execution
# ----------------------------------------------------------------------
class StageRunner:
    """Executes one :class:`~repro.engine.plan.CompiledStage` over a
    partition: ``runner(part) -> part``.

    Filter steps evaluate their (compiled) predicate on the current
    columns, then — unless the mask is all-true, in which case nothing
    is copied at all — apply the selection once, to only the columns a
    later step or the stage output still needs.  Compute steps then run
    over the compacted (surviving-rows-only) columns.
    """

    __slots__ = ("steps",)

    def __init__(self, steps: list):
        keeps = self._filter_keeps(steps)
        self.steps = []
        for step, keep in zip(steps, keeps):
            kind, payload = step
            if kind == "filter":
                self.steps.append((kind, compile_expr(payload), keep))
            elif kind in ("project", "with_columns"):
                compiled = [
                    (name, compile_expr(expr)) for name, expr in payload
                ]
                self.steps.append((kind, compiled, None))
            elif kind == "drop":
                self.steps.append((kind, frozenset(payload), None))
            else:
                raise CompileError(f"unknown stage step {kind!r}")

    @staticmethod
    def _filter_keeps(steps: list) -> list:
        """Backward liveness pass: for each filter step, the set of
        column names that must survive its compaction (``None`` means
        keep everything — the conservative default).

        ``overwritten_later`` tracks names a later ``with_columns``
        assigns: they are kept through compactions even when dead, so
        the overwrite replaces them *in place* and the output column
        order matches the interpreter's dict-update semantics.
        """
        live: set | None = None  # None == every column is live
        overwritten_later: set = set()
        keeps: list = [None] * len(steps)
        for i in range(len(steps) - 1, -1, -1):
            kind, payload = steps[i]
            if kind == "filter":
                if live is not None:
                    keeps[i] = frozenset(live | overwritten_later)
                    live = live | payload.references()
            elif kind == "project":
                refs: set = set()
                for _, expr in payload:
                    refs |= expr.references()
                live = refs
                overwritten_later = set()  # project rebuilds the dict
            elif kind == "with_columns":
                names = {name for name, _ in payload}
                overwritten_later |= names
                if live is not None:
                    refs = set()
                    for _, expr in payload:
                        refs |= expr.references()
                    live = (live - names) | refs
            # "drop": dropped names are already absent from `live`.
        return keeps

    def __call__(self, part: Partition) -> Partition:
        cols = part.columns
        n = part.num_rows
        touched = False
        for kind, payload, keep in self.steps:
            if kind == "filter":
                mask = payload.evaluate(cols, n)
                if mask.dtype != np.bool_:
                    mask = np.asarray(mask, dtype=bool)
                if mask.all():
                    continue  # all-true fast path: no copies
                # One selection vector, applied with ``take``: boolean
                # fancy indexing rescans the mask per column, while
                # flatnonzero scans it once and ``take`` is a straight
                # gather (~4x faster at typical selectivities).
                idx = np.flatnonzero(mask)
                if keep is None:
                    cols = {
                        name: arr.take(idx, axis=0)
                        for name, arr in cols.items()
                    }
                else:
                    cols = {
                        name: arr.take(idx, axis=0)
                        for name, arr in cols.items()
                        if name in keep
                    }
                n = len(idx)
                touched = True
            elif kind == "project":
                cols = {
                    name: compiled.evaluate(cols, n)
                    for name, compiled in payload
                }
                touched = True
            elif kind == "with_columns":
                if not touched:
                    cols = dict(cols)
                    touched = True
                for name, compiled in payload:
                    cols[name] = compiled.evaluate(cols, n)
            else:  # "drop"
                cols = {
                    name: arr
                    for name, arr in cols.items()
                    if name not in payload
                }
                touched = True
        if not touched:
            return part  # pure filter stage whose masks were all-true
        return Partition._from_arrays(cols, n)


def stage_runner(node: P.CompiledStage) -> StageRunner:
    """The (cached) runner for a ``CompiledStage`` plan node."""
    runner = node._runner
    if runner is None:
        runner = node._runner = StageRunner(node.steps)
    return runner


# ----------------------------------------------------------------------
# Physical planning pass: collapse narrow chains into CompiledStage
# ----------------------------------------------------------------------
_FUSABLE = (P.Filter, P.Project, P.WithColumn, P.WithColumns, P.Drop)


def _as_step(node: P.PlanNode) -> tuple:
    if isinstance(node, P.Filter):
        return ("filter", node.predicate)
    if isinstance(node, P.Project):
        return ("project", list(node.exprs))
    if isinstance(node, P.WithColumn):
        return ("with_columns", [(node.name, node.expr)])
    if isinstance(node, P.WithColumns):
        return ("with_columns", list(node.items))
    return ("drop", list(node.names))


def compile_stages(node: P.PlanNode) -> P.PlanNode:
    """Collapse every maximal run of adjacent narrow operators into a
    :class:`~repro.engine.plan.CompiledStage` (with its runner built
    eagerly, so compile errors surface here, not mid-execution).

    ``Cache`` subtrees are preserved untouched (their node instance
    holds materialized partitions); chains that fail to compile — or
    that carry no expression at all, like a lone ``Drop`` — are
    rebuilt as the original interpreted operators.
    """
    if isinstance(node, (P.Source, P.StreamingSource, P.Cache)):
        return node
    if isinstance(node, _FUSABLE):
        chain = []  # top-down
        cursor = node
        while isinstance(cursor, _FUSABLE):
            chain.append(cursor)
            cursor = cursor.child
        child = compile_stages(cursor)
        steps = [_as_step(n) for n in reversed(chain)]
        if any(step[0] != "drop" for step in steps):
            try:
                stage = P.CompiledStage(child, steps)
                stage._runner = StageRunner(steps)
                return stage
            except CompileError:
                pass  # fall through to the interpreted rebuild
        rebuilt = child
        for original in reversed(chain):
            rebuilt = _rebuild(original, rebuilt)
        return rebuilt
    from repro.engine.optimizer import _with_children

    return _with_children(node, [compile_stages(c) for c in node.children])


def _rebuild(node: P.PlanNode, child: P.PlanNode) -> P.PlanNode:
    if isinstance(node, P.Filter):
        return P.Filter(child, node.predicate)
    if isinstance(node, P.Project):
        return P.Project(child, node.exprs)
    if isinstance(node, P.WithColumn):
        return P.WithColumn(child, node.name, node.expr)
    if isinstance(node, P.WithColumns):
        return P.WithColumns(child, node.items)
    return P.Drop(child, node.names)
