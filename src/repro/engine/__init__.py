"""sparklite — a lazy, partitioned, columnar DataFrame engine.

Substitutes Apache Spark for the preprocessing module.  The programming
model mirrors PySpark:

- a :class:`Session` creates DataFrames from rows, column dicts, or CSV;
- a :class:`DataFrame` is a *lazy logical plan*; transformations
  (``select``, ``filter``, ``with_column``, ``group_by().agg``,
  ``join``, ``union``, ``order_by``) build the plan;
- actions (``collect``, ``count``, ``to_columns``, ``show``) execute it.

Execution is partition-at-a-time: narrow operator chains are fused and
stream one partition through the whole chain before the next is
touched, so the working set is O(partition + result), not O(dataset) —
the property the paper's Figure 8 attributes to Spark/Sedona.  A
:class:`repro.utils.memory.MemoryMeter` can be attached to observe (or
cap) that working set.
"""

from repro.engine.session import Session
from repro.engine.dataframe import DataFrame
from repro.engine.expressions import col, lit, udf, Expr
from repro.engine.schema import Schema, Field
from repro.engine.partition import Partition
from repro.engine import aggregates as agg

__all__ = [
    "Session",
    "DataFrame",
    "col",
    "lit",
    "udf",
    "Expr",
    "Schema",
    "Field",
    "Partition",
    "agg",
]
