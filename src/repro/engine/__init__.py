"""sparklite — a lazy, partitioned, columnar DataFrame engine.

Substitutes Apache Spark for the preprocessing module.  The programming
model mirrors PySpark:

- a :class:`Session` creates DataFrames from rows, column dicts, or CSV;
- a :class:`DataFrame` is a *lazy logical plan*; transformations
  (``select``, ``filter``, ``with_column``, ``group_by().agg``,
  ``join``, ``union``, ``order_by``) build the plan;
- actions (``collect``, ``count``, ``to_columns``, ``show``) execute it.

Execution is partition-at-a-time: narrow operator chains are fused and
stream one partition through the whole chain before the next is
touched, so the working set is O(partition + result), not O(dataset) —
the property the paper's Figure 8 attributes to Spark/Sedona.  A
:class:`repro.utils.memory.MemoryMeter` can be attached to observe (or
cap) that working set.

Before execution, plans pass through a rule-based logical optimizer
(:mod:`repro.engine.optimizer`, default on; disable per session with
``Session(optimize=False)`` or per action with
``df.collect(optimize=False)``).  The rules:

- **Column pruning** — every operator is asked for only the columns
  its ancestors actually read; sources get a projection inserted above
  them, wide ``Project``/``WithColumn`` chains shed unused outputs.
- **Predicate pushdown** — filters move below ``Project`` /
  ``WithColumn`` (by substituting the column definitions into the
  predicate, never duplicating UDFs), below ``Drop``/``Union``/
  ``OrderBy``, into ``GroupByAgg`` when key-only, and into join
  inputs (key-only conjuncts reach both sides; side-local conjuncts
  reach their side where the join type allows it).
- **Fusion** — adjacent ``Filter`` nodes AND-combine;
  ``Project∘Project`` collapses via substitution; ``WithColumn``
  chains fuse into one :class:`repro.engine.plan.WithColumns`.
- **Limit pushdown** — ``Limit`` fuses with ``Limit`` and moves below
  row-count-preserving narrow ops.

``Cache`` and ``MapPartitions`` are optimization barriers (the first
holds materialized state, the second is schema-opaque).  Inspect what
the optimizer did with ``df.explain(optimized=True)``, which renders
the plan as written and the rewritten plan.

Materializing operators — the ops whose state is O(dataset), not
O(partition): ``order_by``, ``repartition`` (buffer everything before
emitting), ``cache`` (keeps results resident), the build side of
``join``, and the per-group state of ``group_by().agg``.  All of them
report through the attached ``MemoryMeter``.  Under
``Session(memory_budget=bytes)`` they additionally run *out of core*:
input beyond the budget spills to disk through the session's
:class:`repro.engine.spill.SpillManager` (``order_by`` becomes an
external merge sort, ``join`` grace-partitions an oversized build
side, ``cache``/``repartition`` buffer through spillable overflow) and
results stay bit-identical to the unbounded paths.  Spill failures
surface as :class:`SpillError`; activity lands in ``repro.obs`` under
``engine.spill.*`` and as ``spilled=`` in ``explain(analyze=True)``.

Every action is metered by :mod:`repro.obs` (on by default, one
switch, per-partition cost only): per-operator rows / partitions /
time / peak partition bytes land in ``repro.obs.registry`` and on
``session.last_plan_stats``, and ``df.explain(analyze=True)`` runs
the plan and renders the tree annotated with the live stats.
"""

from repro.engine.session import Session
from repro.engine.dataframe import DataFrame
from repro.engine.expressions import col, lit, udf, Expr
from repro.engine.schema import Schema, Field
from repro.engine.partition import Partition
from repro.engine.optimizer import optimize
from repro.engine.spill import SpillError
from repro.engine.streaming import Stream, StreamingAggregation, WindowSpec
from repro.engine import aggregates as agg

__all__ = [
    "Session",
    "DataFrame",
    "optimize",
    "col",
    "lit",
    "udf",
    "Expr",
    "Schema",
    "Field",
    "Partition",
    "SpillError",
    "Stream",
    "StreamingAggregation",
    "WindowSpec",
    "agg",
]
