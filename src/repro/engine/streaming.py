"""Incremental streaming ingestion: delta-maintained aggregation.

Production traffic arrives continuously; recomputing group-by state
and grid tensors from scratch on every new slice makes ingestion cost
O(history).  This module makes it O(batch):

- :class:`Stream` (``Session.stream(schema)``) ingests record
  micro-batches.  Each ``append`` lands as one immutable
  :class:`~repro.engine.partition.Partition` on an append-only
  :class:`~repro.engine.plan.StreamingSource` plan node, so
  ``Stream.view()`` is an ordinary lazy DataFrame over the full
  retained history — filters, joins, and batch group-bys all work.
- :class:`StreamingAggregation` (``stream.aggregate(...)``) maintains
  group-by state *incrementally*: a :class:`DeltaState` persists the
  batch executor's :class:`~repro.engine.aggregates.ArrayGroupState`
  across batches and merges each new batch's partial aggregates into
  it.  Because the persistent state and the batch group-by run the
  same merge code over the same partition boundaries, the maintained
  result is bit-identical to ``view().group_by(...).agg(...)`` — not
  approximately equal, equal (pinned by
  ``tests/property/test_property_streaming.py``).
- :class:`WindowSpec` adds tumbling/sliding *event-time* windows with
  a watermark: rows older than ``max_event_time - watermark_delay``
  whose window has closed are dropped as late, and closed windows are
  finalized and evicted from the live state, so state stays bounded
  by the number of *open* windows rather than by history.

Per-batch deltas (``StreamingAggregation.delta()``) feed downstream
incremental maintenance — most importantly
``STManager.update_st_grid_array``, which scatters only the touched
(cell, timestep) entries of an existing grid tensor.

Observability: every append is traced (``engine.stream.append`` span)
and metered — ``engine.stream.batches`` / ``rows`` / ``late_rows`` /
``evicted_windows`` counters, an ``engine.stream.state_groups`` gauge,
and two :class:`~repro.obs.metrics.WindowedHistogram` latency classes:
``engine.stream.update_seconds`` (time to absorb one batch) and
``engine.stream.batch_lag_seconds`` (gap between consecutive appends,
i.e. how far behind real time an exporter reading the stream could
be).
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine import plan as P
from repro.engine.aggregates import AggSpec, ArrayGroupState
from repro.engine.dataframe import DataFrame
from repro.engine.partition import Partition
from repro.engine.schema import Schema

__all__ = [
    "DeltaState",
    "Stream",
    "StreamingAggregation",
    "WindowSpec",
    "WINDOW_COLUMN",
]

#: Name of the event-time window key column a windowed aggregation
#: prepends to the user's group keys (the window's inclusive start).
WINDOW_COLUMN = "window_start"

_metrics = None


def _stream_metrics():
    """Lazy process-wide metric handles (same pattern as tensor.pool)."""
    global _metrics
    if _metrics is None:
        from repro import obs

        _metrics = {
            "batches": obs.registry.counter("engine.stream.batches"),
            "rows": obs.registry.counter("engine.stream.rows"),
            "late_rows": obs.registry.counter("engine.stream.late_rows"),
            "evicted": obs.registry.counter("engine.stream.evicted_windows"),
            "groups": obs.registry.gauge("engine.stream.state_groups"),
            "update_s": obs.registry.windowed_histogram(
                "engine.stream.update_seconds"
            ),
            "lag_s": obs.registry.windowed_histogram(
                "engine.stream.batch_lag_seconds"
            ),
        }
    return _metrics


class WindowSpec:
    """An event-time window assignment over a timestamp column.

    ``size`` is the window length in event-time units; ``slide``
    (default ``size``) is the hop between window starts.  With
    ``slide == size`` windows tumble (each event belongs to exactly
    one window); with ``slide < size`` they overlap and each event
    belongs to ``ceil(size / slide)`` candidate windows.  ``origin``
    anchors the window grid (window starts are
    ``origin + k * slide``).
    """

    __slots__ = ("time_column", "size", "slide", "origin")

    def __init__(
        self,
        time_column: str,
        size: float,
        slide: float | None = None,
        origin: float = 0.0,
    ):
        if size <= 0:
            raise ValueError("window size must be positive")
        slide = size if slide is None else slide
        if slide <= 0 or slide > size:
            raise ValueError("slide must satisfy 0 < slide <= size")
        self.time_column = time_column
        self.size = float(size)
        self.slide = float(slide)
        self.origin = float(origin)

    def assign(self, times: np.ndarray):
        """Map event times to (row_index, window_start) pairs.

        Tumbling windows return one pair per row (row_index is just
        arange); sliding windows replicate rows into every window that
        covers them.  Assignment is pure float arithmetic on the event
        times, so it is deterministic and independent of batching.
        """
        times = np.asarray(times, dtype=np.float64)
        last_start = (
            np.floor((times - self.origin) / self.slide) * self.slide
            + self.origin
        )
        if self.slide == self.size:
            return np.arange(len(times), dtype=np.int64), last_start
        num_candidates = int(np.ceil(self.size / self.slide))
        offsets = np.arange(num_candidates, dtype=np.float64) * self.slide
        starts = last_start[:, None] - offsets[None, :]
        covered = times[:, None] < starts + self.size
        idx, which = np.nonzero(covered)
        return idx.astype(np.int64), starts[idx, which]

    def __repr__(self):
        kind = "tumbling" if self.slide == self.size else "sliding"
        return (
            f"WindowSpec({kind}, {self.time_column!r}, size={self.size}, "
            f"slide={self.slide}, origin={self.origin})"
        )


class DeltaState:
    """Persistent, mergeable group-by state updated one batch at a
    time.

    Wraps the batch executor's :class:`ArrayGroupState` — the *same*
    class, not a reimplementation — so feeding it the micro-batches in
    arrival order performs exactly the partial-merge sequence a batch
    group-by over those partitions performs, making the maintained
    accumulators bit-identical to a full recompute.  On top of that it
    tracks which groups the most recent batch touched (for delta
    emission) and supports watermark eviction of closed groups.
    """

    def __init__(self, keys: list, specs: list):
        self.keys = list(keys)
        self.specs = list(specs)
        self.state = ArrayGroupState(self.specs)
        self.key_dtypes: list | None = None
        self.last_changed = np.empty(0, dtype=np.int64)

    @property
    def num_groups(self) -> int:
        return self.state.num_groups

    @property
    def nbytes(self) -> int:
        return self.state.nbytes

    def update(self, part: Partition) -> int:
        """Merge one micro-batch; returns the number of distinct
        groups it touched."""
        if part.num_rows == 0:
            if self.key_dtypes is None and all(
                k in part.columns for k in self.keys
            ):
                self.key_dtypes = [part.columns[k].dtype for k in self.keys]
            self.last_changed = np.empty(0, dtype=np.int64)
            return 0
        key_arrays = [part.columns[k] for k in self.keys]
        if self.key_dtypes is None:
            self.key_dtypes = [arr.dtype for arr in key_arrays]
        stacked = np.stack([np.asarray(a) for a in key_arrays], axis=1)
        if stacked.dtype == object:
            raise TypeError(
                "streaming aggregation state requires numeric group keys; "
                f"got object-dtype keys {self.keys}"
            )
        self.last_changed = self.state.update(stacked, part)
        return len(self.last_changed)

    def to_partition(self) -> Partition:
        """The full current state finalized as one partition (same
        layout as the batch group-by's output)."""
        return self.state.to_partition(self.keys, self.key_dtypes)

    def delta_partition(self) -> Partition:
        """Only the groups the last ``update`` touched, finalized —
        the rows a downstream incremental consumer must re-apply."""
        mask = np.zeros(self.state.num_groups, dtype=bool)
        mask[self.last_changed] = True
        return self.state.select(mask).to_partition(
            self.keys, self.key_dtypes
        )

    def evict_below(self, key_index: int, threshold: float) -> Partition:
        """Finalize and remove every group whose ``key_index``-th key
        is at or below ``threshold``; returns the evicted groups as a
        partition (the "closed windows" emission)."""
        if self.state.num_groups == 0:
            return self.state.to_partition(self.keys, self.key_dtypes)
        column = self.state.keys[:, key_index].astype(np.float64)
        closing = column <= threshold
        closed = self.state.select(closing).to_partition(
            self.keys, self.key_dtypes
        )
        self.state.compact(~closing)
        # Positions shift after compaction; a delta computed before the
        # eviction no longer indexes this state.
        self.last_changed = np.empty(0, dtype=np.int64)
        return closed


class StreamingAggregation:
    """A continuously maintained ``group_by(...).agg(...)`` over a
    :class:`Stream`, optionally windowed by event time.

    Non-windowed: state is keyed by the group keys and grows with the
    number of distinct groups.  ``to_partition()`` equals
    ``stream.view().group_by(*keys).agg(*specs)`` bit for bit.

    Windowed: each row is first assigned to its event-time window(s);
    state is keyed by ``(window_start, *keys)``.  A watermark trails
    the maximum event time seen by ``watermark_delay``; rows whose
    window closed before the watermark are dropped as late, and closed
    windows are finalized into :attr:`closed` and evicted so live
    state stays bounded.
    """

    def __init__(
        self,
        stream: "Stream",
        keys: list,
        specs: list,
        window: WindowSpec | None = None,
        watermark_delay: float = 0.0,
    ):
        for spec in specs:
            if not isinstance(spec, AggSpec):
                raise TypeError(f"expected AggSpec, got {spec!r}")
        if watermark_delay < 0:
            raise ValueError("watermark_delay must be >= 0")
        self.stream = stream
        self.group_keys = list(keys)
        self.specs = list(specs)
        self.window = window
        self.watermark_delay = float(watermark_delay)
        self.watermark = -np.inf
        state_keys = (
            [WINDOW_COLUMN] + self.group_keys
            if window is not None
            else self.group_keys
        )
        self.delta_state = DeltaState(state_keys, self.specs)
        #: Finalized partitions of windows the watermark has closed.
        self.closed: list[Partition] = []
        self.rows_ingested = 0
        self.rows_late = 0
        self.windows_evicted = 0

    # ------------------------------------------------------------------
    # Ingestion (driven by Stream.append)
    # ------------------------------------------------------------------
    def _ingest(self, part: Partition) -> dict:
        if self.window is None:
            changed = self.delta_state.update(part)
            self.rows_ingested += part.num_rows
            return {"rows": part.num_rows, "late": 0, "evicted": 0,
                    "changed_groups": changed}
        expanded, late = self._expand(part)
        changed = self.delta_state.update(expanded)
        evicted = 0
        times = part.columns[self.window.time_column]
        if part.num_rows:
            fresh = float(np.max(np.asarray(times, dtype=np.float64)))
            self.watermark = max(self.watermark, fresh - self.watermark_delay)
            evicted = self._evict()
        self.rows_ingested += part.num_rows
        self.rows_late += late
        self.windows_evicted += evicted
        return {"rows": part.num_rows, "late": late, "evicted": evicted,
                "changed_groups": changed}

    def _expand(self, part: Partition):
        """Window-assign a batch: replicate rows into their windows,
        drop rows whose window the current watermark already closed.

        The late count is per dropped row->window *assignment*, not
        per row: under a sliding window a row can be late for its
        oldest window yet on time for a newer one, and the count is
        the contributions actually discarded."""
        window = self.window
        needed = list(
            dict.fromkeys(
                self.group_keys
                + [s.column for s in self.specs if s.column != "*"]
            )
        )
        if part.num_rows == 0:
            columns = {WINDOW_COLUMN: np.empty(0, dtype=np.float64)}
            for name in needed:
                columns[name] = part.columns[name]
            return Partition(columns), 0
        times = np.asarray(
            part.columns[window.time_column], dtype=np.float64
        )
        idx, starts = window.assign(times)
        on_time = starts + window.size > self.watermark
        late = int(len(on_time) - np.count_nonzero(on_time))
        if late:
            idx, starts = idx[on_time], starts[on_time]
        columns = {WINDOW_COLUMN: starts}
        for name in needed:
            columns[name] = np.asarray(part.columns[name])[idx]
        return Partition(columns), late

    def _evict(self) -> int:
        state = self.delta_state
        if state.num_groups == 0:
            return 0
        # A window [s, s + size) is closed once the watermark reaches
        # its end: s + size <= watermark.  Late-row filtering in
        # _expand keeps exactly the complement, so no accepted row can
        # ever belong to an evicted window.
        threshold = self.watermark - self.window.size
        closing = state.state.keys[:, 0].astype(np.float64) <= threshold
        if not closing.any():
            return 0
        closed = state.evict_below(0, threshold)
        self.closed.append(closed)
        return closed.num_rows

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def keys(self) -> list:
        """The state's key columns (``window_start`` first when
        windowed)."""
        return list(self.delta_state.keys)

    @property
    def num_groups(self) -> int:
        return self.delta_state.num_groups

    @property
    def state_nbytes(self) -> int:
        """Estimated bytes of live aggregate state — the bound on
        ingestion memory when the stream runs ``retain=False``."""
        return self.delta_state.nbytes

    def to_partition(self) -> Partition:
        """The live (open) state finalized as one partition."""
        return self.delta_state.to_partition()

    def to_columns(self) -> dict:
        return dict(self.to_partition().columns)

    def delta(self) -> Partition:
        """Groups changed by the most recent append, finalized — feed
        this to ``STManager.update_st_grid_array`` for incremental
        grid maintenance."""
        return self.delta_state.delta_partition()

    def snapshot_partition(self) -> Partition:
        """Closed windows plus live state as one partition (all groups
        ever finalized, each exactly once)."""
        parts = [p for p in self.closed if p.num_rows] + [self.to_partition()]
        return Partition.concat(parts)

    def recompute_dataframe(self) -> DataFrame:
        """The equivalent *batch* computation over the stream's full
        retained history — what this aggregation maintains
        incrementally.  Only defined for non-windowed aggregations
        (windowed results depend on arrival order through the
        watermark, which a batch plan cannot express)."""
        if self.window is not None:
            raise ValueError(
                "windowed aggregations have no batch-equivalent plan; "
                "compare against a per-batch replay instead"
            )
        return (
            self.stream.view()
            .group_by(*self.group_keys)
            .agg(*self.specs)
        )


class Stream:
    """An ingestion endpoint for record micro-batches (see module
    docstring).  Create via :meth:`Session.stream`."""

    def __init__(self, session, schema, retain: bool = True):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        self.session = session
        self.schema = schema
        self.retain = retain
        self.source = P.StreamingSource(schema)
        self.aggregations: list[StreamingAggregation] = []
        self.batches_ingested = 0
        self.rows_ingested = 0
        self._last_append_monotonic: float | None = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _coerce(self, data) -> Partition:
        """Coerce a micro-batch (dict of arrays, list of row dicts or
        tuples) to a Partition with the stream schema's dtypes."""
        if isinstance(data, Partition):
            arrays = data.columns
        elif isinstance(data, dict):
            arrays = data
        else:
            rows = list(data)
            if rows and not isinstance(rows[0], dict):
                arrays = {
                    f.name: [row[i] for row in rows]
                    for i, f in enumerate(self.schema.fields)
                }
            else:
                arrays = {
                    f.name: [row[f.name] for row in rows]
                    for f in self.schema.fields
                }
        missing = [f.name for f in self.schema.fields if f.name not in arrays]
        if missing:
            raise ValueError(f"batch is missing columns {missing}")
        columns = {}
        for field in self.schema.fields:
            arr = np.asarray(arrays[field.name])
            if arr.dtype != field.dtype:
                arr = arr.astype(field.dtype)
            columns[field.name] = arr
        return Partition(columns)

    def append(self, data) -> dict:
        """Ingest one micro-batch.

        Coerces ``data`` to the stream schema, retains it on the
        streaming source (when ``retain=True``), and pushes it through
        every registered aggregation.  Returns per-append stats:
        ``rows``, ``late_rows``, ``evicted_windows``,
        ``changed_groups``, ``update_seconds``.
        """
        from repro import obs

        metrics = _stream_metrics()
        now = time.monotonic()
        if self._last_append_monotonic is not None:
            metrics["lag_s"].observe(now - self._last_append_monotonic)
        self._last_append_monotonic = now

        part = self._coerce(data)
        started = time.perf_counter()
        with obs.tracer.span("engine.stream.append") as span:
            if self.retain:
                self.source.append(part)
            late = evicted = changed = 0
            for aggregation in self.aggregations:
                stats = aggregation._ingest(part)
                late += stats["late"]
                evicted += stats["evicted"]
                changed += stats["changed_groups"]
            span.add("rows", part.num_rows)
            span.add("late_rows", late)
        elapsed = time.perf_counter() - started

        self.batches_ingested += 1
        self.rows_ingested += part.num_rows
        metrics["batches"].inc()
        metrics["rows"].inc(part.num_rows)
        if late:
            metrics["late_rows"].inc(late)
        if evicted:
            metrics["evicted"].inc(evicted)
        metrics["groups"].set(
            sum(a.num_groups for a in self.aggregations)
        )
        metrics["update_s"].observe(elapsed)
        return {
            "rows": part.num_rows,
            "late_rows": late,
            "evicted_windows": evicted,
            "changed_groups": changed,
            "update_seconds": elapsed,
        }

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def view(self) -> DataFrame:
        """A lazy DataFrame over the full retained history.  The
        returned frame is *live*: each execution replays the batches
        ingested so far, one partition per batch."""
        if not self.retain:
            raise ValueError(
                "stream was created with retain=False; history is not "
                "kept, only registered aggregations are maintained"
            )
        return DataFrame(self.session, self.source)

    def aggregate(
        self,
        keys,
        specs,
        window: WindowSpec | None = None,
        watermark_delay: float = 0.0,
    ) -> StreamingAggregation:
        """Register an incrementally maintained aggregation.

        ``keys`` are group-key column names; ``specs`` are
        :class:`~repro.engine.aggregates.AggSpec` (use the ``agg``
        helpers).  Batches appended from now on update it in O(batch);
        batches appended before registration are folded in once here.
        """
        if isinstance(keys, str):
            keys = [keys]
        aggregation = StreamingAggregation(
            self, list(keys), list(specs), window, watermark_delay
        )
        for part in self.source.batches:
            aggregation._ingest(part)
        self.aggregations.append(aggregation)
        return aggregation
