"""Partitioned JSON-lines scan and write.

Complements the CSV reader for the "reading and writing various
non-spatial datasets" role of the preprocessing module: one JSON
object per line, schema inferred from a sample, lazily parsed per
row-range partition.
"""

from __future__ import annotations

import itertools
import json

import numpy as np

from repro.engine.partition import Partition
from repro.engine.plan import Source
from repro.engine.schema import Field, Schema


def infer_jsonl_schema(path: str, sample_rows: int = 100) -> Schema:
    """Infer a schema from the union of keys in leading rows."""
    fields: dict[str, np.dtype] = {}
    with open(path) as handle:
        for line in itertools.islice(handle, sample_rows):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            for key, value in record.items():
                dtype = _dtype_of(value)
                if key not in fields:
                    fields[key] = dtype
                elif fields[key] != dtype:
                    fields[key] = _promote(fields[key], dtype)
    if not fields:
        raise ValueError(f"no records found in {path}")
    return Schema([Field(name, dtype) for name, dtype in fields.items()])


def _dtype_of(value) -> np.dtype:
    if isinstance(value, bool):
        return np.dtype(bool)
    if isinstance(value, int):
        return np.dtype(np.int64)
    if isinstance(value, float):
        return np.dtype(np.float64)
    return np.dtype(object)


def _promote(a: np.dtype, b: np.dtype) -> np.dtype:
    if {a.kind, b.kind} == {"i", "f"}:
        return np.dtype(np.float64)
    return np.dtype(object)


def jsonl_partition_factories(
    path: str, schema: Schema, rows_per_partition: int = 100_000
) -> list:
    """Deferred readers, one per line-range of the file."""
    with open(path, "rb") as handle:
        total = sum(1 for _ in handle)
    factories = []
    for start in range(0, max(total, 1), rows_per_partition):
        stop = min(start + rows_per_partition, total)
        factories.append(
            lambda s=start, e=stop: _read_range(path, schema, s, e)
        )
    return factories


def _read_range(path: str, schema: Schema, start: int, stop: int) -> Partition:
    records = []
    with open(path) as handle:
        for line in itertools.islice(handle, start, stop):
            line = line.strip()
            if line:
                records.append(json.loads(line))
    columns = {}
    for field in schema.fields:
        raw = [record.get(field.name) for record in records]
        if field.dtype.kind in "if" and all(v is not None for v in raw):
            columns[field.name] = np.asarray(raw, dtype=field.dtype)
        else:
            arr = np.empty(len(raw), dtype=object)
            arr[:] = raw
            columns[field.name] = arr
    if not columns:
        return Partition.empty(schema)
    return Partition(columns)


def read_jsonl(
    session, path: str, schema: Schema | None = None,
    rows_per_partition: int = 100_000,
):
    """Scan a JSON-lines file as a partitioned DataFrame."""
    from repro.engine.dataframe import DataFrame

    if schema is None:
        schema = infer_jsonl_schema(path)
    factories = jsonl_partition_factories(path, schema, rows_per_partition)
    return DataFrame(session, Source(factories, schema))


def write_jsonl(df, path: str) -> int:
    """Write a DataFrame as JSON lines, streaming; returns row count."""
    count = 0
    with open(path, "w") as handle:
        for part in df.iter_partitions():
            for row in part.rows():
                handle.write(json.dumps(_jsonable(row)) + "\n")
                count += 1
    return count


def _jsonable(row: dict) -> dict:
    out = {}
    for key, value in row.items():
        if isinstance(value, np.integer):
            out[key] = int(value)
        elif isinstance(value, np.floating):
            out[key] = float(value)
        elif isinstance(value, np.bool_):
            out[key] = bool(value)
        else:
            out[key] = value
    return out
