"""Aggregate specifications and mergeable accumulators.

Aggregation runs as Spark does: each input partition is *partially*
aggregated (vectorized), and the partial states are merged into a
global hash table keyed by the group key.  Only (num_groups) state is
ever held, never the input rows — this is the memory property Figure 8
measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AggSpec:
    """One output aggregate: ``kind`` over ``column`` named ``out_name``."""

    out_name: str
    column: str  # "*" for count
    kind: str  # count | sum | min | max | mean

    _KINDS = ("count", "sum", "min", "max", "mean")

    def __post_init__(self):
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown aggregate {self.kind!r}; expected one of {self._KINDS}"
            )
        if self.kind != "count" and self.column == "*":
            raise ValueError(f"aggregate {self.kind!r} needs a column")


def count(column: str = "*", name: str | None = None) -> AggSpec:
    return AggSpec(name or "count", column, "count")


def sum_(column: str, name: str | None = None) -> AggSpec:
    return AggSpec(name or f"sum_{column}", column, "sum")


def min_(column: str, name: str | None = None) -> AggSpec:
    return AggSpec(name or f"min_{column}", column, "min")


def max_(column: str, name: str | None = None) -> AggSpec:
    return AggSpec(name or f"max_{column}", column, "max")


def mean(column: str, name: str | None = None) -> AggSpec:
    return AggSpec(name or f"mean_{column}", column, "mean")


class _State:
    """Per-group mergeable accumulator for one AggSpec."""

    __slots__ = ("kind", "value", "count")

    def __init__(self, kind: str):
        self.kind = kind
        self.value = None
        self.count = 0

    def update(self, partial_value, partial_count: int) -> None:
        self.count += partial_count
        if self.kind == "count":
            return
        if self.value is None:
            self.value = partial_value
        elif self.kind in ("sum", "mean"):
            self.value += partial_value
        elif self.kind == "min":
            self.value = min(self.value, partial_value)
        elif self.kind == "max":
            self.value = max(self.value, partial_value)

    def result(self):
        if self.kind == "count":
            return self.count
        if self.kind == "mean":
            return self.value / self.count if self.count else float("nan")
        return self.value


def partial_aggregate(keys_arrays, value_array, kind: str):
    """Vectorized per-partition partial aggregation.

    Returns (unique_key_rows, partial_values, partial_counts) where
    ``unique_key_rows`` is a list of key tuples.
    """
    stacked = np.stack(
        [np.asarray(k) for k in keys_arrays], axis=1
    )
    if stacked.dtype == object:
        # Fallback: dict-based grouping for non-numeric keys.
        groups: dict = {}
        for i in range(stacked.shape[0]):
            key = tuple(stacked[i])
            groups.setdefault(key, []).append(i)
        uniques = list(groups)
        idx_lists = [np.asarray(groups[k]) for k in uniques]
        counts = np.array([len(ix) for ix in idx_lists])
        if kind == "count":
            return uniques, counts.astype(np.float64), counts
        vals = np.asarray(value_array, dtype=np.float64)
        if kind in ("sum", "mean"):
            partial = np.array([vals[ix].sum() for ix in idx_lists])
        elif kind == "min":
            partial = np.array([vals[ix].min() for ix in idx_lists])
        else:
            partial = np.array([vals[ix].max() for ix in idx_lists])
        return uniques, partial, counts

    unique_rows, inverse, counts = np.unique(
        stacked, axis=0, return_inverse=True, return_counts=True
    )
    uniques = [tuple(row) for row in unique_rows]
    if kind == "count":
        return uniques, counts.astype(np.float64), counts
    vals = np.asarray(value_array, dtype=np.float64)
    if kind in ("sum", "mean"):
        partial = np.bincount(inverse, weights=vals, minlength=len(uniques))
    elif kind == "min":
        partial = np.full(len(uniques), np.inf)
        np.minimum.at(partial, inverse, vals)
    else:
        partial = np.full(len(uniques), -np.inf)
        np.maximum.at(partial, inverse, vals)
    return uniques, partial, counts
