"""Aggregate specifications and mergeable accumulators.

Aggregation runs as Spark does: each input partition is *partially*
aggregated (vectorized), and the partial states are merged into a
global hash table keyed by the group key.  Only (num_groups) state is
ever held, never the input rows — this is the memory property Figure 8
measures.

Every aggregate here is *mergeable*: its per-partition partial is a
fixed-size summary that a two-accumulator ``merge`` combines without
seeing the input rows again.  That property is what the spill paths,
the morsel-parallel executor, and the incremental streaming layer
(:mod:`repro.engine.streaming`) all rely on — and it is why ``var`` /
``std`` carry a Chan-style ``(mean, M2)`` pair instead of a naive
sum-of-squares (numerically unstable) or the raw values
(non-mergeable), and why ``count_distinct`` carries the value *set*
rather than a count (counts of distinct values do not add).

:class:`ArrayGroupState` is the vectorized form of that merge — whole
accumulator arrays combined with ``np.unique`` + scatter updates, one
merge per partition.  Both the batch group-by executor and the
streaming ``DeltaState`` run *this exact class*, which is what makes
incrementally maintained results bit-identical to a from-scratch
recompute over the same partition boundaries: the two paths execute
the same float operations in the same order by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AggSpec:
    """One output aggregate: ``kind`` over ``column`` named ``out_name``."""

    out_name: str
    column: str  # "*" for count
    kind: str  # count | sum | min | max | mean | var | std | count_distinct

    _KINDS = (
        "count",
        "sum",
        "min",
        "max",
        "mean",
        "var",
        "std",
        "count_distinct",
    )

    def __post_init__(self):
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown aggregate {self.kind!r}; expected one of {self._KINDS}"
            )
        if self.kind != "count" and self.column == "*":
            raise ValueError(f"aggregate {self.kind!r} needs a column")


def count(column: str = "*", name: str | None = None) -> AggSpec:
    return AggSpec(name or "count", column, "count")


def sum_(column: str, name: str | None = None) -> AggSpec:
    return AggSpec(name or f"sum_{column}", column, "sum")


def min_(column: str, name: str | None = None) -> AggSpec:
    return AggSpec(name or f"min_{column}", column, "min")


def max_(column: str, name: str | None = None) -> AggSpec:
    return AggSpec(name or f"max_{column}", column, "max")


def mean(column: str, name: str | None = None) -> AggSpec:
    return AggSpec(name or f"mean_{column}", column, "mean")


def var_(column: str, name: str | None = None) -> AggSpec:
    """Sample variance (ddof=1); NaN for groups with fewer than 2 rows."""
    return AggSpec(name or f"var_{column}", column, "var")


def std_(column: str, name: str | None = None) -> AggSpec:
    """Sample standard deviation (ddof=1); NaN below 2 rows."""
    return AggSpec(name or f"std_{column}", column, "std")


def count_distinct(column: str, name: str | None = None) -> AggSpec:
    return AggSpec(name or f"count_distinct_{column}", column, "count_distinct")


def _chan_merge(na, ma, m2a, nb, mb, m2b):
    """Chan et al. pairwise combination of two (count, mean, M2)
    moment summaries.  Exact pass-through when one side is empty, so
    merging a partial into a fresh accumulator reproduces the partial
    bit for bit."""
    if na == 0:
        return mb, m2b
    if nb == 0:
        return ma, m2a
    n = na + nb
    delta = mb - ma
    mean = ma + delta * (nb / n)
    m2 = m2a + m2b + delta * delta * (na * (nb / n))
    return mean, m2


class _State:
    """Per-group mergeable accumulator for one AggSpec.

    ``value`` holds the kind-specific partial summary: the running sum
    for ``sum``/``mean``, the extremum for ``min``/``max``, a
    ``(mean, M2)`` moment pair for ``var``/``std``, and the set of
    seen values for ``count_distinct``.
    """

    __slots__ = ("kind", "value", "count")

    def __init__(self, kind: str):
        self.kind = kind
        self.value = None
        self.count = 0

    def update(self, partial_value, partial_count: int) -> None:
        if self.kind == "count":
            self.count += partial_count
            return
        if self.kind == "count_distinct":
            self.count += partial_count
            if self.value is None:
                self.value = set(partial_value)
            else:
                self.value |= set(partial_value)
            return
        if self.kind in ("var", "std"):
            mb, m2b = partial_value
            if self.value is None:
                self.value = (mb, m2b)
            else:
                ma, m2a = self.value
                self.value = _chan_merge(
                    self.count, ma, m2a, partial_count, mb, m2b
                )
            self.count += partial_count
            return
        self.count += partial_count
        if self.value is None:
            self.value = partial_value
        elif self.kind in ("sum", "mean"):
            self.value += partial_value
        elif self.kind == "min":
            self.value = min(self.value, partial_value)
        elif self.kind == "max":
            self.value = max(self.value, partial_value)

    def merge(self, other: "_State") -> None:
        """Fold another accumulator of the same kind into this one —
        the two-accumulator combine the spill / parallel / streaming
        paths need (``update`` takes a *partial*, this takes a peer)."""
        if other.kind != self.kind:
            raise ValueError(
                f"cannot merge {other.kind!r} state into {self.kind!r}"
            )
        if other.count == 0 and other.value is None:
            return
        self.update(other.value, other.count)

    def result(self):
        if self.kind == "count":
            return self.count
        if self.kind == "count_distinct":
            return len(self.value) if self.value is not None else 0
        if self.kind == "mean":
            return self.value / self.count if self.count else float("nan")
        if self.kind in ("var", "std"):
            if self.count < 2:
                return float("nan")
            variance = self.value[1] / (self.count - 1)
            return float(np.sqrt(variance)) if self.kind == "std" else variance
        return self.value


def _group_index_lists(stacked: np.ndarray):
    groups: dict = {}
    for i in range(stacked.shape[0]):
        key = tuple(stacked[i])
        groups.setdefault(key, []).append(i)
    uniques = list(groups)
    idx_lists = [np.asarray(groups[k]) for k in uniques]
    return uniques, idx_lists


def _moment_partial(vals: np.ndarray, inverse: np.ndarray, counts):
    """Per-group (mean, M2) pairs via the same two-pass bincount the
    vectorized group state uses, so dict-path partials merge with
    array-path partials bit for bit."""
    num_groups = len(counts)
    sums = np.bincount(inverse, weights=vals, minlength=num_groups)
    means = sums / counts
    dev = vals - means[inverse]
    m2 = np.bincount(inverse, weights=dev * dev, minlength=num_groups)
    return means, m2


def _distinct_sets(vals: np.ndarray, inverse: np.ndarray, num_groups: int):
    """Per-group sets of distinct values (object list of Python sets)."""
    order = np.argsort(inverse, kind="stable")
    sorted_inverse = inverse[order]
    sorted_vals = vals[order]
    boundaries = np.flatnonzero(np.diff(sorted_inverse)) + 1
    starts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [len(sorted_vals)]))
    sets = [set() for _ in range(num_groups)]
    for g, start, stop in zip(sorted_inverse[starts], starts, stops):
        sets[g] = set(sorted_vals[start:stop].tolist())
    return sets


def partial_aggregate(keys_arrays, value_array, kind: str):
    """Vectorized per-partition partial aggregation.

    Returns (unique_key_rows, partial_values, partial_counts) where
    ``unique_key_rows`` is a list of key tuples and each partial value
    is in the form :meth:`_State.update` accepts for ``kind``.
    """
    stacked = np.stack(
        [np.asarray(k) for k in keys_arrays], axis=1
    )
    if stacked.dtype == object:
        # Fallback: dict-based grouping for non-numeric keys.
        uniques, idx_lists = _group_index_lists(stacked)
        counts = np.array([len(ix) for ix in idx_lists])
        if kind == "count":
            return uniques, counts.astype(np.float64), counts
        vals = np.asarray(value_array, dtype=np.float64)
        if kind in ("sum", "mean"):
            partial = np.array([vals[ix].sum() for ix in idx_lists])
        elif kind == "min":
            partial = np.array([vals[ix].min() for ix in idx_lists])
        elif kind == "max":
            partial = np.array([vals[ix].max() for ix in idx_lists])
        elif kind in ("var", "std"):
            inverse = np.empty(len(vals), dtype=np.int64)
            for g, ix in enumerate(idx_lists):
                inverse[ix] = g
            means, m2 = _moment_partial(vals, inverse, counts)
            partial = list(zip(means, m2))
        else:
            partial = [set(vals[ix].tolist()) for ix in idx_lists]
        return uniques, partial, counts

    unique_rows, inverse, counts = np.unique(
        stacked, axis=0, return_inverse=True, return_counts=True
    )
    inverse = np.reshape(inverse, -1)
    uniques = [tuple(row) for row in unique_rows]
    if kind == "count":
        return uniques, counts.astype(np.float64), counts
    vals = np.asarray(value_array, dtype=np.float64)
    if kind in ("sum", "mean"):
        partial = np.bincount(inverse, weights=vals, minlength=len(uniques))
    elif kind == "min":
        partial = np.full(len(uniques), np.inf)
        np.minimum.at(partial, inverse, vals)
    elif kind == "max":
        partial = np.full(len(uniques), -np.inf)
        np.maximum.at(partial, inverse, vals)
    elif kind in ("var", "std"):
        means, m2 = _moment_partial(vals, inverse, counts)
        partial = list(zip(means, m2))
    else:
        partial = _distinct_sets(vals, inverse, len(uniques))
    return uniques, partial, counts


# ----------------------------------------------------------------------
# Vectorized per-group state: whole accumulator arrays, scatter merges
# ----------------------------------------------------------------------
def unique_rows(rows: np.ndarray, return_counts: bool = False):
    """``np.unique`` over key rows; 1-column keys take the fast 1-D
    path instead of the void-view axis=0 machinery."""
    if rows.shape[1] == 1:
        result = np.unique(
            rows[:, 0], return_inverse=True, return_counts=return_counts
        )
        uniques = result[0][:, None]
        rest = result[1:]
    else:
        result = np.unique(
            rows, axis=0, return_inverse=True, return_counts=return_counts
        )
        uniques = result[0]
        rest = result[1:]
    inverse = rest[0].reshape(-1)
    if return_counts:
        return uniques, inverse, rest[1]
    return uniques, inverse


def empty_group_partition(keys, specs):
    from repro.engine.partition import Partition

    cols = {k: np.empty(0) for k in keys}
    cols.update({s.out_name: np.empty(0) for s in specs})
    return Partition(cols)


class ArrayGroupState:
    """Per-group accumulators held as whole arrays, merged with
    ``np.unique`` + scatter updates — one vectorized merge per
    partition instead of one Python dict update per key.

    ``values[i]`` mirrors :class:`_State` per spec: a float64 array for
    sum/mean/min/max, a ``(means, m2s)`` array pair for var/std, an
    object array of Python sets for count_distinct, ``None`` for count
    (the shared ``counts`` array is its state).

    :meth:`update` returns the merged-state positions of the groups the
    incoming partition touched — the batch executor ignores this, the
    streaming :class:`~repro.engine.streaming.DeltaState` uses it to
    emit per-batch deltas.
    """

    def __init__(self, specs):
        self.specs = specs
        self.keys: np.ndarray | None = None  # (G, K) unique key rows
        self.counts: np.ndarray | None = None  # (G,) int64 rows per group
        self.values: list = [None] * len(specs)

    @property
    def num_groups(self) -> int:
        return 0 if self.keys is None else len(self.keys)

    @property
    def nbytes(self) -> int:
        total = 0
        for arr in [self.keys, self.counts]:
            if arr is not None:
                total += arr.nbytes
        for spec, value in zip(self.specs, self.values):
            if value is None:
                continue
            if spec.kind in ("var", "std"):
                total += value[0].nbytes + value[1].nbytes
            elif spec.kind == "count_distinct":
                # Rough per-set estimate: dict header + one slot/value.
                total += sum(64 + 32 * len(s) for s in value)
            else:
                total += value.nbytes
        return total

    def _partials(self, uniques, inverse, counts, part):
        partials = []
        for spec in self.specs:
            if spec.kind == "count":
                partials.append(None)
                continue
            vals = np.asarray(part.columns[spec.column], dtype=np.float64)
            if spec.kind in ("sum", "mean"):
                partial = np.bincount(
                    inverse, weights=vals, minlength=len(uniques)
                )
            elif spec.kind == "min":
                partial = np.full(len(uniques), np.inf)
                np.minimum.at(partial, inverse, vals)
            elif spec.kind == "max":
                partial = np.full(len(uniques), -np.inf)
                np.maximum.at(partial, inverse, vals)
            elif spec.kind in ("var", "std"):
                partial = _moment_partial(vals, inverse, counts)
            else:
                partial = np.empty(len(uniques), dtype=object)
                partial[:] = _distinct_sets(vals, inverse, len(uniques))
            partials.append(partial)
        return partials

    def update(self, stacked: np.ndarray, part) -> np.ndarray:
        """Merge one partition's rows (key rows ``stacked``) into the
        state; returns the merged-state indices of the touched groups
        (aligned with the partition's sorted unique key rows)."""
        uniques, inverse, counts = unique_rows(stacked, return_counts=True)
        counts = counts.astype(np.int64)
        partials = self._partials(uniques, inverse, counts, part)

        if self.keys is None:
            self.keys = uniques
            self.counts = counts
            self.values = partials
            return np.arange(len(uniques), dtype=np.int64)

        num_old = len(self.keys)
        combined = np.concatenate([self.keys, uniques], axis=0)
        merged_keys, remap = unique_rows(combined)
        old_map, new_map = remap[:num_old], remap[num_old:]
        old_counts = np.zeros(len(merged_keys), dtype=np.int64)
        old_counts[old_map] = self.counts
        merged_counts = old_counts.copy()
        merged_counts[new_map] += counts
        merged_values = []
        for spec, old, partial in zip(self.specs, self.values, partials):
            if spec.kind == "count":
                merged_values.append(None)
            elif spec.kind in ("sum", "mean"):
                merged = np.zeros(len(merged_keys))
                merged[old_map] = old
                merged[new_map] += partial
                merged_values.append(merged)
            elif spec.kind == "min":
                merged = np.full(len(merged_keys), np.inf)
                merged[old_map] = old
                merged[new_map] = np.minimum(merged[new_map], partial)
                merged_values.append(merged)
            elif spec.kind == "max":
                merged = np.full(len(merged_keys), -np.inf)
                merged[old_map] = old
                merged[new_map] = np.maximum(merged[new_map], partial)
                merged_values.append(merged)
            elif spec.kind in ("var", "std"):
                merged_values.append(
                    self._merge_moments(
                        merged_keys, old_map, new_map, old_counts,
                        counts, old, partial,
                    )
                )
            else:
                merged = np.empty(len(merged_keys), dtype=object)
                merged[old_map] = old
                for slot, fresh in zip(new_map, partial):
                    existing = merged[slot]
                    merged[slot] = (
                        fresh if existing is None else existing | fresh
                    )
                merged_values.append(merged)
        self.keys = merged_keys
        self.counts = merged_counts
        self.values = merged_values
        return new_map

    @staticmethod
    def _merge_moments(
        merged_keys, old_map, new_map, old_counts, counts, old, partial
    ):
        """Vectorized Chan merge of (mean, M2) pairs at ``new_map``;
        groups unseen before take the incoming partial bit for bit
        (same exactness rule as the scalar :func:`_chan_merge`)."""
        means = np.zeros(len(merged_keys))
        m2s = np.zeros(len(merged_keys))
        if old is not None:
            means[old_map] = old[0]
            m2s[old_map] = old[1]
        na = old_counts[new_map].astype(np.float64)
        nb = counts.astype(np.float64)
        pm, pm2 = partial
        ma = means[new_map]
        m2a = m2s[new_map]
        with np.errstate(invalid="ignore", divide="ignore"):
            n = na + nb
            delta = pm - ma
            ratio = nb / n
            merged_mean = ma + delta * ratio
            merged_m2 = m2a + pm2 + delta * delta * (na * ratio)
        fresh = na == 0
        if fresh.any():
            merged_mean = np.where(fresh, pm, merged_mean)
            merged_m2 = np.where(fresh, pm2, merged_m2)
        means[new_map] = merged_mean
        m2s[new_map] = merged_m2
        return means, m2s

    def select(self, mask: np.ndarray) -> "ArrayGroupState":
        """A new state holding only the groups where ``mask`` is True
        (accumulator arrays sliced, sets shared — the caller finalizes
        or discards the selection, never updates it concurrently)."""
        out = ArrayGroupState(self.specs)
        if self.keys is None or not mask.any():
            return out
        out.keys = self.keys[mask]
        out.counts = self.counts[mask]
        out.values = [
            None
            if value is None
            else (value[0][mask], value[1][mask])
            if spec.kind in ("var", "std")
            else value[mask]
            for spec, value in zip(self.specs, self.values)
        ]
        return out

    def compact(self, mask: np.ndarray) -> int:
        """Drop the groups where ``mask`` is False (watermark
        eviction); returns how many groups were evicted."""
        if self.keys is None:
            return 0
        evicted = int(len(self.keys) - np.count_nonzero(mask))
        if evicted == 0:
            return 0
        kept = self.select(mask)
        self.keys = kept.keys
        self.counts = kept.counts
        self.values = (
            kept.values if kept.keys is not None else [None] * len(self.specs)
        )
        return evicted

    def to_dict_state(self) -> dict:
        """Convert to the dict-of-accumulators form (used when a later
        partition turns out to carry object keys)."""
        state: dict = {}
        for g in range(self.num_groups):
            slot = [_State(s.kind) for s in self.specs]
            for spec_index, spec in enumerate(self.specs):
                value = self.values[spec_index]
                if spec.kind == "count":
                    partial = None
                elif spec.kind in ("var", "std"):
                    partial = (value[0][g], value[1][g])
                elif spec.kind == "count_distinct":
                    partial = value[g]
                else:
                    partial = value[g]
                slot[spec_index].update(partial, int(self.counts[g]))
            state[tuple(self.keys[g])] = slot
        return state

    def to_partition(self, keys, key_dtypes):
        from repro.engine.partition import Partition

        if self.keys is None:
            return empty_group_partition(keys, self.specs)
        columns = {}
        for i, key_name in enumerate(keys):
            arr = self.keys[:, i]
            if key_dtypes is not None and key_dtypes[i].kind in "iu":
                arr = arr.astype(np.int64)
            columns[key_name] = arr
        for spec_index, spec in enumerate(self.specs):
            value = self.values[spec_index]
            if spec.kind == "count":
                columns[spec.out_name] = self.counts.copy()
            elif spec.kind == "mean":
                columns[spec.out_name] = value / self.counts
            elif spec.kind in ("var", "std"):
                with np.errstate(invalid="ignore", divide="ignore"):
                    out = value[1] / (self.counts - 1)
                out = np.where(self.counts < 2, np.nan, out)
                if spec.kind == "std":
                    out = np.sqrt(out)
                columns[spec.out_name] = out
            elif spec.kind == "count_distinct":
                columns[spec.out_name] = np.fromiter(
                    (len(s) for s in value),
                    dtype=np.int64,
                    count=len(value),
                )
            else:
                columns[spec.out_name] = value
        return Partition(columns)
