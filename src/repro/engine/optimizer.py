"""Rule-based logical plan optimizer.

Rewrites a logical plan before execution; plans are trees of immutable
descriptions, so every rule builds new nodes and never mutates inputs.
The rules:

- **Filter fusion** — adjacent ``Filter`` nodes become one conjunction,
  so each partition is masked once.
- **Predicate pushdown** — filters move below ``Project`` /
  ``WithColumn`` / ``Drop`` / ``Union`` / ``OrderBy``; key-only
  predicates move below ``GroupByAgg`` and into *both* sides of an
  inner ``Join``; side-local predicates move into their join side
  (right-side pushdown only for inner joins — a left join keeps
  unmatched left rows that an early right filter would change).
  Predicates are rewritten through projections by expression
  substitution; a predicate is never pushed through a UDF-bearing
  computed column it depends on (UDFs are opaque and must not be
  duplicated).
- **Project∘Project fusion** — stacked projections collapse via
  substitution (skipped when it would duplicate a non-trivial inner
  expression).
- **WithColumn-chain fusion** — consecutive ``WithColumn`` nodes fuse
  into a single :class:`~repro.engine.plan.WithColumns` operator.
- **Limit pushdown** — ``Limit`` sinks below row-preserving narrow ops
  (``Project`` / ``WithColumn`` / ``Drop``) and adjacent limits fuse to
  their minimum.
- **Column pruning** — a top-down pass computes the columns each
  subtree must produce, drops computed columns nobody reads, narrows
  ``GroupByAgg``/``Join`` inputs to keys + referenced values, and wraps
  ``Source`` scans in a narrowing projection.

Two node kinds are barriers: ``Cache`` (its subtree and node instance
are preserved untouched so materialized partitions survive
re-execution) and ``MapPartitions`` (the function is schema-opaque, so
nothing is pushed past it and pruning restarts below it with the full
schema).
"""

from __future__ import annotations

import functools
import operator

import numpy as np

from repro.engine import plan as P
from repro.engine.expressions import Alias, BinaryOp, Column, Expr, Literal

_MAX_PASSES = 25


def optimize(node: P.PlanNode, stages: bool = False) -> P.PlanNode:
    """Return an optimized, semantically equivalent plan.

    With ``stages=True`` the logical rewrite is followed by the
    physical-planning rule from :mod:`repro.engine.compile`: every
    maximal run of adjacent Filter/Project/WithColumn/Drop operators
    collapses into one :class:`~repro.engine.plan.CompiledStage`
    (flat-postfix expression programs, selection-vector filtering).
    The executor runs those stages — optionally morsel-parallel — with
    results bit-identical to the interpreted operators."""
    node = _rewrite(node)
    node = _prune(node, None)
    # Pruning inserts narrowing projections; fuse/push once more so
    # e.g. Project∘Project collapses and filters slide below them.
    node = _rewrite(node)
    if stages:
        from repro.engine.compile import compile_stages

        node = compile_stages(node)
    return node


# ----------------------------------------------------------------------
# Expression utilities
# ----------------------------------------------------------------------
def _conjuncts(expr: Expr) -> list:
    """Split a predicate on top-level logical-and into its factors."""
    if isinstance(expr, BinaryOp) and expr.fn is np.logical_and:
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _conjoin(exprs: list) -> Expr:
    return functools.reduce(operator.and_, exprs)


def _is_cheap(expr: Expr) -> bool:
    """Cheap to evaluate twice: bare column refs and constants."""
    if isinstance(expr, (Column, Literal)):
        return True
    if isinstance(expr, Alias):
        return _is_cheap(expr.inner)
    return False


def _ordered(names, preference: list | None) -> list:
    """Stable, duplicate-free column list; ``preference`` fixes order."""
    names = set(names)
    if preference is not None:
        out = [c for c in preference if c in names]
        rest = sorted(names - set(out))
        return out + rest
    return sorted(names)


# ----------------------------------------------------------------------
# Static schema (strict: None when a MapPartitions makes it unknowable)
# ----------------------------------------------------------------------
def static_columns(node: P.PlanNode) -> list | None:
    """Output column names, or ``None`` below a schema-opaque node."""
    if isinstance(node, (P.Source, P.StreamingSource)):
        return list(node.schema.names)
    if isinstance(node, P.Project):
        return [name for name, _ in node.exprs]
    if isinstance(node, (P.Filter, P.Limit, P.OrderBy, P.Repartition)):
        return static_columns(node.children[0])
    if isinstance(node, P.WithColumn):
        base = static_columns(node.child)
        if base is None:
            return None
        return base + ([node.name] if node.name not in base else [])
    if isinstance(node, P.WithColumns):
        base = static_columns(node.child)
        if base is None:
            return None
        for name, _ in node.items:
            if name not in base:
                base = base + [name]
        return base
    if isinstance(node, P.Drop):
        base = static_columns(node.child)
        if base is None:
            return None
        dropped = set(node.names)
        return [n for n in base if n not in dropped]
    if isinstance(node, P.Union):
        return static_columns(node.inputs[0])
    if isinstance(node, P.GroupByAgg):
        return list(node.keys) + [a.out_name for a in node.aggs]
    if isinstance(node, P.Join):
        left = static_columns(node.left)
        right = static_columns(node.right)
        if left is None or right is None:
            return None
        return left + [n for n in right if n not in node.on]
    if isinstance(node, P.Cache):
        return static_columns(node.child)
    return None  # MapPartitions and anything unknown


# ----------------------------------------------------------------------
# Bottom-up rewrite pass
# ----------------------------------------------------------------------
def _rewrite(node: P.PlanNode) -> P.PlanNode:
    for _ in range(_MAX_PASSES):
        node, changed = _rewrite_pass(node)
        if not changed:
            break
    return node


def _rewrite_pass(node: P.PlanNode):
    if isinstance(node, (P.Source, P.StreamingSource, P.Cache, P.CompiledStage)):
        # CompiledStage only appears when optimizing an already
        # physically-planned tree; treat it as a barrier like Cache.
        # StreamingSource is a leaf whose node instance must be
        # preserved — it accumulates batches across executions.
        return node, False
    changed = False
    new_children = []
    for child in node.children:
        new_child, child_changed = _rewrite_pass(child)
        changed = changed or child_changed
        new_children.append(new_child)
    if changed:
        node = _with_children(node, new_children)
    rewritten = _apply_rules(node)
    if rewritten is not None:
        return rewritten, True
    return node, changed


def _with_children(node: P.PlanNode, children: list) -> P.PlanNode:
    if isinstance(node, P.Project):
        return P.Project(children[0], node.exprs)
    if isinstance(node, P.Filter):
        return P.Filter(children[0], node.predicate)
    if isinstance(node, P.WithColumn):
        return P.WithColumn(children[0], node.name, node.expr)
    if isinstance(node, P.WithColumns):
        return P.WithColumns(children[0], node.items)
    if isinstance(node, P.Drop):
        return P.Drop(children[0], node.names)
    if isinstance(node, P.Union):
        return P.Union(list(children))
    if isinstance(node, P.Limit):
        return P.Limit(children[0], node.n)
    if isinstance(node, P.GroupByAgg):
        return P.GroupByAgg(children[0], node.keys, node.aggs)
    if isinstance(node, P.Join):
        return P.Join(children[0], children[1], node.on, node.how)
    if isinstance(node, P.OrderBy):
        return P.OrderBy(children[0], node.keys, node.ascending)
    if isinstance(node, P.MapPartitions):
        return P.MapPartitions(children[0], node.fn, node.label)
    if isinstance(node, P.Repartition):
        return P.Repartition(children[0], node.num_partitions)
    raise TypeError(f"unknown plan node {type(node).__name__}")


def _apply_rules(node: P.PlanNode):
    """One local rewrite at ``node``, or ``None`` if nothing applies."""
    if isinstance(node, P.Filter):
        return _rewrite_filter(node)
    if isinstance(node, P.Project):
        return _rewrite_project(node)
    if isinstance(node, P.WithColumn):
        child = node.child
        if isinstance(child, P.WithColumn):
            return P.WithColumns(
                child.child,
                [(child.name, child.expr), (node.name, node.expr)],
            )
        if isinstance(child, P.WithColumns):
            return P.WithColumns(
                child.child, list(child.items) + [(node.name, node.expr)]
            )
        return None
    if isinstance(node, P.Limit):
        return _rewrite_limit(node)
    return None


def _push_through_items(conjunct: Expr, items: list):
    """Rewrite a predicate to run *below* computed columns, or ``None``
    when it depends on a UDF-bearing column (never duplicate UDFs)."""
    for name, expr in reversed(items):
        if name in conjunct.references():
            if expr.has_udf():
                return None
            conjunct = conjunct.substitute({name: expr})
    return conjunct


def _rewrite_filter(node: P.Filter):
    child = node.child
    predicate = node.predicate

    if isinstance(child, P.Filter):
        return P.Filter(child.child, child.predicate & predicate)

    if isinstance(child, P.Project):
        mapping = dict(child.exprs)
        pushed, kept = [], []
        for conjunct in _conjuncts(predicate):
            refs = conjunct.references()
            if refs <= set(mapping) and not any(
                mapping[r].has_udf() for r in refs
            ):
                pushed.append(conjunct.substitute(mapping))
            else:
                kept.append(conjunct)
        if not pushed:
            return None
        new = P.Project(P.Filter(child.child, _conjoin(pushed)), child.exprs)
        return P.Filter(new, _conjoin(kept)) if kept else new

    if isinstance(child, (P.WithColumn, P.WithColumns)):
        items = (
            [(child.name, child.expr)]
            if isinstance(child, P.WithColumn)
            else list(child.items)
        )
        pushed, kept = [], []
        for conjunct in _conjuncts(predicate):
            below = _push_through_items(conjunct, items)
            if below is None:
                kept.append(conjunct)
            else:
                pushed.append(below)
        if not pushed:
            return None
        filtered = P.Filter(child.child, _conjoin(pushed))
        new = (
            P.WithColumn(filtered, child.name, child.expr)
            if isinstance(child, P.WithColumn)
            else P.WithColumns(filtered, items)
        )
        return P.Filter(new, _conjoin(kept)) if kept else new

    if isinstance(child, P.Drop):
        return P.Drop(P.Filter(child.child, predicate), child.names)

    if isinstance(child, P.Union):
        return P.Union([P.Filter(i, predicate) for i in child.inputs])

    if isinstance(child, P.OrderBy):
        return P.OrderBy(
            P.Filter(child.child, predicate), child.keys, child.ascending
        )

    if isinstance(child, P.GroupByAgg):
        keys = set(child.keys)
        pushed, kept = [], []
        for conjunct in _conjuncts(predicate):
            (pushed if conjunct.references() <= keys else kept).append(
                conjunct
            )
        if not pushed:
            return None
        new = P.GroupByAgg(
            P.Filter(child.child, _conjoin(pushed)), child.keys, child.aggs
        )
        return P.Filter(new, _conjoin(kept)) if kept else new

    if isinstance(child, P.Join):
        return _push_filter_into_join(child, predicate)

    return None


def _push_filter_into_join(join: P.Join, predicate: Expr):
    left_cols = static_columns(join.left)
    right_cols = static_columns(join.right)
    if left_cols is None or right_cols is None:
        return None
    on = set(join.on)
    left_set, right_set = set(left_cols), set(right_cols)
    left_push, right_push, kept = [], [], []
    for conjunct in _conjuncts(predicate):
        refs = conjunct.references()
        if refs <= on and join.how == "inner":
            left_push.append(conjunct)
            right_push.append(conjunct)
        elif refs <= left_set:
            left_push.append(conjunct)
        elif refs <= right_set and join.how == "inner":
            right_push.append(conjunct)
        else:
            kept.append(conjunct)
    if not left_push and not right_push:
        return None
    left = (
        P.Filter(join.left, _conjoin(left_push)) if left_push else join.left
    )
    right = (
        P.Filter(join.right, _conjoin(right_push))
        if right_push
        else join.right
    )
    new = P.Join(left, right, join.on, join.how)
    return P.Filter(new, _conjoin(kept)) if kept else new


def _rewrite_project(node: P.Project):
    child = node.child
    if not isinstance(child, P.Project):
        return None
    inner = dict(child.exprs)
    uses: dict = {}
    for _, expr in node.exprs:
        for ref in expr.references():
            uses[ref] = uses.get(ref, 0) + 1
    for name, expr in inner.items():
        if not _is_cheap(expr) and uses.get(name, 0) > 1:
            return None  # fusing would evaluate a non-trivial expr twice
    return P.Project(
        child.child,
        [(name, expr.substitute(inner)) for name, expr in node.exprs],
    )


def _rewrite_limit(node: P.Limit):
    child = node.child
    if isinstance(child, P.Limit):
        return P.Limit(child.child, min(node.n, child.n))
    if isinstance(child, P.Project):
        return P.Project(P.Limit(child.child, node.n), child.exprs)
    if isinstance(child, P.WithColumn):
        return P.WithColumn(
            P.Limit(child.child, node.n), child.name, child.expr
        )
    if isinstance(child, P.WithColumns):
        return P.WithColumns(P.Limit(child.child, node.n), child.items)
    if isinstance(child, P.Drop):
        return P.Drop(P.Limit(child.child, node.n), child.names)
    return None


# ----------------------------------------------------------------------
# Top-down column pruning
# ----------------------------------------------------------------------
def _prune(node: P.PlanNode, required: list | None) -> P.PlanNode:
    """Prune ``node`` so it produces at least ``required`` columns
    (``None`` = every column of its logical schema).  Subtrees may
    produce a superset of ``required`` (e.g. a filter's predicate
    columns); enclosing projections cut the excess."""
    if isinstance(node, P.Cache):
        return node  # barrier: keep instance + subtree for replay

    if isinstance(node, (P.Source, P.StreamingSource)):
        if required is None:
            return node
        names = list(node.schema.names)
        needed = [c for c in names if c in set(required)]
        if needed and len(needed) < len(names):
            return P.Project(node, [(c, Column(c)) for c in needed])
        return node

    if isinstance(node, P.Project):
        if required is None:
            kept = list(node.exprs)
        else:
            req = set(required)
            kept = [(n, e) for n, e in node.exprs if n in req]
            if not kept:  # keep the schema non-degenerate
                kept = list(node.exprs)[:1]
        child_refs: set = set()
        for _, expr in kept:
            child_refs |= expr.references()
        child_req = _ordered(child_refs, static_columns(node.child))
        return P.Project(_prune(node.child, child_req), kept)

    if isinstance(node, P.Filter):
        if required is None:
            child_req = None
        else:
            child_req = _ordered(
                set(required) | node.predicate.references(),
                static_columns(node.child),
            )
        return P.Filter(_prune(node.child, child_req), node.predicate)

    if isinstance(node, P.WithColumn):
        return _prune(
            P.WithColumns(node.child, [(node.name, node.expr)]), required
        )

    if isinstance(node, P.WithColumns):
        if required is None:
            return P.WithColumns(_prune(node.child, None), list(node.items))
        req = set(required)
        kept = []
        for name, expr in reversed(node.items):
            if name in req:
                req.discard(name)
                req |= expr.references()
                kept.append((name, expr))
        kept.reverse()
        child_req = _ordered(req, static_columns(node.child))
        child = _prune(node.child, child_req)
        if not kept:
            return child
        return P.WithColumns(child, kept)

    if isinstance(node, P.Drop):
        child_req = static_columns(node) if required is None else required
        return P.Drop(_prune(node.child, child_req), node.names)

    if isinstance(node, P.Union):
        inputs = [_prune(i, required) for i in node.inputs]
        if required is not None:
            # Re-project every input so all branches yield the same
            # columns in the same order (branches may retain different
            # pushed-down helper columns).
            inputs = [
                P.Project(i, [(c, Column(c)) for c in required])
                for i in inputs
            ]
        return P.Union(inputs)

    if isinstance(node, P.Limit):
        return P.Limit(_prune(node.child, required), node.n)

    if isinstance(node, P.OrderBy):
        if required is None:
            child_req = None
        else:
            child_req = _ordered(
                set(required) | set(node.keys), static_columns(node.child)
            )
        return P.OrderBy(
            _prune(node.child, child_req), node.keys, node.ascending
        )

    if isinstance(node, P.Repartition):
        return P.Repartition(
            _prune(node.child, required), node.num_partitions
        )

    if isinstance(node, P.MapPartitions):
        # Opaque function: it may read (or emit) anything.
        return P.MapPartitions(_prune(node.child, None), node.fn, node.label)

    if isinstance(node, P.CompiledStage):
        return node  # physical node: already planned, leave untouched

    if isinstance(node, P.GroupByAgg):
        if required is None:
            kept_aggs = list(node.aggs)
        else:
            req = set(required)
            kept_aggs = [a for a in node.aggs if a.out_name in req]
            if not kept_aggs:
                kept_aggs = list(node.aggs)[:1]
        child_refs = set(node.keys) | {
            a.column for a in kept_aggs if a.column != "*"
        }
        child_req = _ordered(child_refs, static_columns(node.child))
        return P.GroupByAgg(
            _prune(node.child, child_req), node.keys, kept_aggs
        )

    if isinstance(node, P.Join):
        left_cols = static_columns(node.left)
        right_cols = static_columns(node.right)
        if required is None or left_cols is None or right_cols is None:
            return P.Join(
                _prune(node.left, None),
                _prune(node.right, None),
                node.on,
                node.how,
            )
        wanted = set(required) | set(node.on)
        left_req = [c for c in left_cols if c in wanted]
        right_req = [c for c in right_cols if c in wanted]
        return P.Join(
            _prune(node.left, left_req),
            _prune(node.right, right_req),
            node.on,
            node.how,
        )

    raise TypeError(f"unknown plan node {type(node).__name__}")
