"""The lazy DataFrame API."""

from __future__ import annotations

import numpy as np

from repro.engine import plan as P
from repro.engine.aggregates import AggSpec
from repro.engine.executor import iter_partitions, plan_column_names
from repro.engine.expressions import Column, Expr
from repro.engine.partition import Partition


class DataFrame:
    """An immutable, lazy, partitioned table.

    Transformations return new DataFrames without running anything;
    actions (:meth:`collect`, :meth:`count`, :meth:`to_columns`, ...)
    execute the plan partition-at-a-time.
    """

    def __init__(self, session, plan_node: P.PlanNode):
        self.session = session
        self.plan = plan_node
        self._plan_cache: dict = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        """Output column names (derived statically from the plan)."""
        return plan_column_names(self.plan)

    def explain(self, optimized: bool = False, analyze: bool = False) -> str:
        """Return the logical plan as an indented tree.

        With ``optimized=True``, render both the plan as written and
        the plan after the rule-based optimizer has rewritten it.

        With ``analyze=True``, *execute* the plan (as the session
        would run it, optimizer and stage compiler included) and
        render the executed tree annotated with live per-operator
        statistics — rows in/out, partitions, cumulative wall time,
        the largest partition each operator emitted, and for compiled
        stages the pure compute time and rows/sec (Spark's ``EXPLAIN
        ANALYZE``)."""
        if analyze:
            from repro.obs import PlanStats

            plan = self._execution_plan()
            stats = PlanStats()
            for _ in iter_partitions(
                plan,
                meter=self.session.meter,
                stats=stats,
                parallelism=self.session.parallelism,
                queue_depth=self.session.queue_depth,
                spill=self.session.spill_manager,
            ):
                pass
            stats.flush_to_registry(plan)
            return "== Analyzed Plan ==\n" + stats.render(plan)
        if not optimized:
            return self.plan.describe()
        from repro.engine.optimizer import optimize as _optimize

        return (
            "== Logical Plan ==\n"
            + self.plan.describe()
            + "\n== Optimized Plan ==\n"
            + _optimize(
                self.plan, stages=getattr(self.session, "compile", True)
            ).describe()
        )

    def __repr__(self):
        return f"DataFrame[{', '.join(self.columns)}]"

    # ------------------------------------------------------------------
    # Transformations (lazy)
    # ------------------------------------------------------------------
    def _wrap(self, node: P.PlanNode) -> "DataFrame":
        return DataFrame(self.session, node)

    def select(self, *exprs) -> "DataFrame":
        """Project columns.  Accepts names or expressions (use
        ``.alias`` on expressions to name outputs)."""
        pairs = []
        for expr in exprs:
            if isinstance(expr, str):
                pairs.append((expr, Column(expr)))
            elif isinstance(expr, Expr):
                pairs.append((expr.name, expr))
            else:
                raise TypeError(f"cannot select {expr!r}")
        return self._wrap(P.Project(self.plan, pairs))

    def filter(self, predicate: Expr) -> "DataFrame":
        """Keep rows where the predicate evaluates truthy."""
        return self._wrap(P.Filter(self.plan, predicate))

    where = filter

    def with_column(self, name: str, expr: Expr) -> "DataFrame":
        """Add (or replace) a column computed from an expression."""
        return self._wrap(P.WithColumn(self.plan, name, expr))

    def drop(self, *names) -> "DataFrame":
        return self._wrap(P.Drop(self.plan, list(names)))

    def union(self, other: "DataFrame") -> "DataFrame":
        """Concatenate rows (schemas must align by name)."""
        if set(self.columns) != set(other.columns):
            raise ValueError(
                f"union column mismatch: {self.columns} vs {other.columns}"
            )
        return self._wrap(P.Union([self.plan, other.plan]))

    def limit(self, n: int) -> "DataFrame":
        return self._wrap(P.Limit(self.plan, int(n)))

    def group_by(self, *keys) -> "GroupedDataFrame":
        """Start a grouped aggregation."""
        return GroupedDataFrame(self, [str(k) for k in keys])

    def join(self, other: "DataFrame", on, how: str = "inner") -> "DataFrame":
        """Hash join; the right side is the broadcast build side."""
        on = [on] if isinstance(on, str) else list(on)
        return self._wrap(P.Join(self.plan, other.plan, on, how))

    def order_by(self, *keys, ascending: bool = True) -> "DataFrame":
        """Globally sort (materializing operator)."""
        return self._wrap(P.OrderBy(self.plan, list(keys), ascending))

    def repartition(self, num_partitions: int) -> "DataFrame":
        return self._wrap(P.Repartition(self.plan, num_partitions))

    def map_partitions(self, fn, label: str = "map_partitions") -> "DataFrame":
        """Apply ``fn(Partition) -> Partition`` to each partition."""
        return self._wrap(P.MapPartitions(self.plan, fn, label))

    def cache(self) -> "DataFrame":
        """Materialize results on first execution and replay them on
        later executions (Spark ``persist`` semantics) — skips
        upstream recomputation when the DataFrame is iterated
        repeatedly (e.g. once per training epoch), at the cost of
        keeping the partitions resident."""
        return self._wrap(P.Cache(self.plan))

    # ------------------------------------------------------------------
    # Actions (eager)
    # ------------------------------------------------------------------
    def _execution_plan(self, optimize: bool | None = None) -> P.PlanNode:
        """The plan actually executed: optimized (and narrow chains
        collapsed into compiled stages, unless ``Session(compile=
        False)``) — or exactly as written when optimization is turned
        off on the call or the session.

        The optimized plan is memoized per DataFrame: plans are
        immutable, and reusing the same physical tree across actions
        keeps compiled-stage state (dtype records, scratch pools,
        literal caches) warm for repeated executions such as
        per-epoch iteration."""
        if optimize is None:
            optimize = getattr(self.session, "optimize", True)
        if not optimize:
            return self.plan
        stages = getattr(self.session, "compile", True)
        plan = self._plan_cache.get(stages)
        if plan is None:
            from repro.engine.optimizer import optimize as _optimize

            plan = self._plan_cache[stages] = _optimize(
                self.plan, stages=stages
            )
        return plan

    def iter_partitions(self, optimize: bool | None = None):
        """Stream result partitions (the out-of-core access path used
        by the DFtoTorch converter).

        When the observability layer is enabled (the default), the run
        is metered: per-operator stats land in ``repro.obs.registry``
        under ``engine.op.<Operator>.*`` and the most recent run's
        :class:`~repro.obs.PlanStats` is kept on
        ``session.last_plan_stats``.  Metering reads partition sizes
        and clocks only — results are identical either way."""
        from repro import obs

        plan = self._execution_plan(optimize)
        if not obs.enabled():
            return iter_partitions(
                plan,
                meter=self.session.meter,
                parallelism=self.session.parallelism,
                queue_depth=self.session.queue_depth,
                spill=self.session.spill_manager,
            )
        return self._observed_partitions(plan)

    def _observed_partitions(self, plan: P.PlanNode):
        from repro import obs
        from repro.obs import PlanStats

        session = self.session
        stats = PlanStats()
        query_id = session.next_query_id()
        session.last_plan_stats = stats
        session.last_plan = plan
        session.last_query_id = query_id
        obs.registry.counter("engine.queries").inc()
        # The query span stays open on the driver stack while the
        # consumer pulls partitions, so every span opened during
        # execution — operators, spill I/O, and (via the captured
        # parent in _morsel_map) worker-thread morsels — nests under
        # it: one connected tree per query.
        span = obs.tracer.start_span("engine.query")
        span.set("query_id", query_id)
        span.set("parallelism", session.parallelism)
        try:
            yield from iter_partitions(
                plan,
                meter=session.meter,
                stats=stats,
                parallelism=session.parallelism,
                queue_depth=session.queue_depth,
                spill=session.spill_manager,
            )
        finally:
            # Flush even when the consumer stops early (limit / take):
            # whatever was pulled is what the registry should see.
            stats.flush_to_registry(plan)
            obs.tracer.end_span(span)
            session.last_query_span = span

    def collect(
        self, optimize: bool | None = None, profile: str | None = None
    ) -> list[dict]:
        """Materialize all rows as dicts (test/debug path).

        With ``profile=<path>``, also write a self-contained query
        profile artifact (JSON: query id, session config, plan text,
        per-operator stats incl. compile/spill flags, and the query's
        span tree) after the run — requires the observability layer to
        be enabled.  See docs/OBSERVABILITY.md for the schema."""
        if profile is not None:
            from repro import obs

            if not obs.enabled():
                raise RuntimeError(
                    "collect(profile=...) needs the observability layer; "
                    "it is currently disabled (repro.obs.set_enabled)"
                )
        rows = []
        for part in self.iter_partitions(optimize):
            rows.extend(part.rows())
        if profile is not None:
            self.write_profile(profile)
        return rows

    def write_profile(self, path: str) -> dict:
        """Write the most recent metered execution of this session as
        a self-contained profile JSON (atomic write); returns the
        payload.  Valid after any observed action on this session."""
        from repro.obs.export import SCHEMA_VERSION, atomic_write_json

        session = self.session
        plan = session.last_plan
        stats = session.last_plan_stats
        if plan is None or stats is None:
            raise RuntimeError(
                "no metered execution to profile: run an action with "
                "observability enabled first"
            )
        operators = stats.to_dict(plan)
        flat: list[dict] = [operators]
        spilled = 0
        compiled = False
        for node in flat:
            flat.extend(node.get("children", ()))
            spilled += node.get("spilled_bytes", 0)
            if node["operator"].startswith("CompiledStage"):
                compiled = True
        span = session.last_query_span
        payload = {
            "schema_version": SCHEMA_VERSION,
            "query_id": session.last_query_id,
            "session": {
                "parallelism": session.parallelism,
                "queue_depth": session.queue_depth,
                "optimize": session.optimize,
                "compile": session.compile,
                "memory_budget": session.memory_budget,
                "default_parallelism": session.default_parallelism,
            },
            "plan": plan.describe().splitlines(),
            "compiled": compiled,
            "spilled": spilled > 0,
            "spilled_bytes": spilled,
            "operators": operators,
            "trace": span.to_dict() if span is not None else None,
        }
        atomic_write_json(path, payload)
        return payload

    def count(self) -> int:
        """Number of rows."""
        return sum(part.num_rows for part in self.iter_partitions())

    def num_partitions(self) -> int:
        return sum(1 for _ in self.iter_partitions())

    def to_columns(self) -> dict:
        """Materialize the result as {name: full numpy array}."""
        parts = list(self.iter_partitions())
        if not parts:
            return {name: np.empty(0) for name in self.columns}
        whole = Partition.concat(parts)
        return dict(whole.columns)

    def take(self, n: int) -> list[dict]:
        return self.limit(n).collect()

    def show(self, n: int = 10) -> str:
        """Format the first ``n`` rows as an aligned text table."""
        rows = self.take(n)
        names = self.columns
        widths = {
            name: max(len(name), *(len(_fmt(r[name])) for r in rows))
            if rows
            else len(name)
            for name in names
        }
        header = " | ".join(name.ljust(widths[name]) for name in names)
        sep = "-+-".join("-" * widths[name] for name in names)
        body = [
            " | ".join(_fmt(r[name]).ljust(widths[name]) for name in names)
            for r in rows
        ]
        return "\n".join([header, sep, *body])


def _fmt(value) -> str:
    if isinstance(value, (float, np.floating)):
        return f"{value:.6g}"
    return str(value)


class GroupedDataFrame:
    """Intermediate handle produced by :meth:`DataFrame.group_by`."""

    def __init__(self, df: DataFrame, keys: list[str]):
        if not keys:
            raise ValueError("group_by needs at least one key")
        self._df = df
        self._keys = keys

    def agg(self, *specs: AggSpec) -> DataFrame:
        """Apply aggregate specs (see :mod:`repro.engine.aggregates`)."""
        if not specs:
            raise ValueError("agg needs at least one aggregate")
        return self._df._wrap(
            P.GroupByAgg(self._df.plan, self._keys, list(specs))
        )

    def count(self, name: str = "count") -> DataFrame:
        from repro.engine.aggregates import count as count_spec

        return self.agg(count_spec(name=name))
