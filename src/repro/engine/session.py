"""The engine entry point (SparkSession analogue)."""

from __future__ import annotations

import os

import numpy as np

from repro.engine import plan as P
from repro.engine.dataframe import DataFrame
from repro.engine.io_csv import csv_partition_factories, infer_csv_schema
from repro.engine.partition import Partition
from repro.engine.schema import Field, Schema
from repro.utils.memory import MemoryMeter
from repro.utils.validation import check_positive


class Session:
    """Creates DataFrames and owns execution configuration.

    Parameters
    ----------
    default_parallelism:
        How many partitions ``create_dataframe`` splits local data into.
    meter:
        Optional :class:`MemoryMeter` observing the engine working set
        (used by the Figure 8 bench).
    optimize:
        Run the rule-based logical-plan optimizer before executing
        (default on).  Turn off for ablation benchmarks or to debug a
        plan exactly as written.
    compile:
        Collapse narrow operator chains into compiled stages
        (:mod:`repro.engine.compile`) before executing (default on;
        requires ``optimize``).  Turn off to benchmark or debug the
        tree-walking interpreted path — results are bit-identical
        either way.
    parallelism:
        Worker threads for morsel-parallel execution of compiled
        stages (default 1 = serial).  Stage compute runs inside numpy
        ufuncs, which release the GIL, so values up to the machine's
        core count scale near-linearly on expression-bound pipelines.
    queue_depth:
        Bound on in-flight morsels per stage (default
        ``2 * parallelism``); caps resident partitions at
        O(parallelism + queue_depth) in parallel mode.
    memory_budget:
        Soft cap (bytes) on what the *materializing* operators —
        ``order_by``, ``repartition``, the join build side, ``cache``
        — may keep resident.  When set, input beyond the budget spills
        to disk through the session's :class:`SpillManager` and is
        restored on demand, so datasets larger than memory still
        execute; results are bit-identical to the unbounded paths.
        Default ``None`` (never spill); the ``REPRO_TEST_MEMORY_BUDGET``
        environment variable, when set, supplies a default budget so CI
        can force the spill paths on small fixtures.
    spill_dir:
        Parent directory for the spill temp dir (default: the system
        temp dir).  Only consulted when something actually spills.
    """

    def __init__(
        self,
        default_parallelism: int = 4,
        meter: MemoryMeter | None = None,
        optimize: bool = True,
        compile: bool = True,
        parallelism: int = 1,
        queue_depth: int | None = None,
        memory_budget: int | None = None,
        spill_dir: str | None = None,
    ):
        check_positive(default_parallelism, "default_parallelism")
        check_positive(parallelism, "parallelism")
        if queue_depth is not None:
            check_positive(queue_depth, "queue_depth")
        if memory_budget is None:
            env = os.environ.get("REPRO_TEST_MEMORY_BUDGET")
            if env:
                memory_budget = int(env)
        if memory_budget is not None:
            check_positive(memory_budget, "memory_budget")
        self.default_parallelism = default_parallelism
        self.meter = meter
        self.optimize = optimize
        self.compile = compile
        self.parallelism = parallelism
        self.queue_depth = queue_depth
        self.memory_budget = memory_budget
        self.spill_dir = spill_dir
        self._spill_manager = None
        # Most recent metered execution (set by DataFrame actions when
        # repro.obs is enabled): the executed plan, its PlanStats, the
        # query id the session assigned, and the finished query span.
        self.last_plan = None
        self.last_plan_stats = None
        self.last_query_id = None
        self.last_query_span = None
        self._query_seq = 0

    def next_query_id(self) -> int:
        """Assign the next query id (1-based, unique per session).
        Every metered execution gets one; it tags the ``engine.query``
        span and names the profile artifact a query emits."""
        self._query_seq += 1
        return self._query_seq

    # ------------------------------------------------------------------
    # Spill lifecycle
    # ------------------------------------------------------------------
    @property
    def spill_manager(self):
        """The session's :class:`~repro.engine.spill.SpillManager`, or
        ``None`` when no memory budget is set (never spill)."""
        if self.memory_budget is None:
            return None
        if self._spill_manager is None:
            from repro.engine.spill import SpillManager

            self._spill_manager = SpillManager(
                budget=self.memory_budget, root=self.spill_dir
            )
        return self._spill_manager

    def close(self) -> None:
        """Release session resources: deletes the spill directory and
        every spilled partition.  Idempotent; the session remains
        usable afterwards (a new spill dir is created on demand)."""
        manager, self._spill_manager = self._spill_manager, None
        if manager is not None:
            manager.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # DataFrame creation
    # ------------------------------------------------------------------
    def create_dataframe(self, data, columns=None, num_partitions=None) -> DataFrame:
        """Create a DataFrame from local data.

        ``data`` may be a dict of equal-length arrays/lists, or a list
        of tuples (requires ``columns``) or dicts.
        """
        n_parts = num_partitions or self.default_parallelism
        if isinstance(data, dict):
            names = list(data)
            arrays = {k: np.asarray(v) for k, v in data.items()}
            total = len(next(iter(arrays.values()))) if arrays else 0
        else:
            data = list(data)
            if not data:
                raise ValueError("cannot infer schema from empty data")
            if isinstance(data[0], dict):
                names = columns or list(data[0])
            else:
                if columns is None:
                    raise ValueError("tuple rows need explicit columns")
                names = list(columns)
            whole = Partition.from_rows(data, names)
            arrays = whole.columns
            total = whole.num_rows

        bounds = np.linspace(0, total, n_parts + 1).astype(int)
        factories = []
        for start, stop in zip(bounds[:-1], bounds[1:]):
            if stop <= start:
                continue
            chunk = {
                name: arr[start:stop] for name, arr in arrays.items()
            }
            factories.append(lambda c=chunk: Partition(c))
        schema = Schema(
            [Field(name, arrays[name].dtype) for name in names]
        )
        if not factories:
            factories = [lambda s=schema: Partition.empty(s)]
        return DataFrame(self, P.Source(factories, schema))

    def from_partitions(self, factories, schema: Schema) -> DataFrame:
        """Create a DataFrame from deferred partition factories (the
        out-of-core path: partitions are built only during execution)."""
        return DataFrame(self, P.Source(list(factories), schema))

    def read_csv(
        self,
        path: str,
        schema: Schema | None = None,
        rows_per_partition: int = 100_000,
        header: bool = True,
    ) -> DataFrame:
        """Scan a CSV file as a partitioned DataFrame.

        The file is split into row ranges; each partition parses its
        range lazily during execution, so the whole file is never
        resident at once.
        """
        if schema is None:
            schema = infer_csv_schema(path, header=header)
        factories = csv_partition_factories(
            path, schema, rows_per_partition=rows_per_partition, header=header
        )
        return DataFrame(self, P.Source(factories, schema))

    def read_jsonl(
        self,
        path: str,
        schema: Schema | None = None,
        rows_per_partition: int = 100_000,
    ) -> DataFrame:
        """Scan a JSON-lines file as a partitioned DataFrame."""
        from repro.engine.io_jsonl import read_jsonl

        return read_jsonl(
            self, path, schema=schema, rows_per_partition=rows_per_partition
        )

    def stream(self, schema, retain: bool = True):
        """Open an append-only ingestion stream (see
        :mod:`repro.engine.streaming`).

        ``schema`` is a :class:`Schema` or a list of ``(name, dtype)``
        pairs; every appended micro-batch is coerced to it.  With
        ``retain=True`` (default) batches are kept on the streaming
        source so ``stream.view()`` exposes the full history as a lazy
        DataFrame; with ``retain=False`` only registered incremental
        aggregations are maintained and history is discarded —
        ingestion memory is then bounded by aggregate state alone.
        """
        from repro.engine.streaming import Stream

        return Stream(self, schema, retain=retain)

    def range(self, n: int, num_partitions=None) -> DataFrame:
        """A DataFrame with a single int column ``id`` of 0..n-1."""
        return self.create_dataframe(
            {"id": np.arange(int(n), dtype=np.int64)},
            num_partitions=num_partitions,
        )
