"""Schemas: ordered named fields with numpy dtypes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Field:
    """A named column with a numpy dtype (``object`` for mixed/str)."""

    name: str
    dtype: np.dtype

    def __repr__(self):
        return f"Field({self.name!r}, {np.dtype(self.dtype).name})"


class Schema:
    """An ordered collection of fields."""

    def __init__(self, fields):
        self.fields = [
            f if isinstance(f, Field) else Field(f[0], np.dtype(f[1]))
            for f in fields
        ]
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names: {names}")
        self._by_name = {f.name: f for f in self.fields}

    @property
    def names(self) -> list[str]:
        return [f.name for f in self.fields]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Field:
        if name not in self._by_name:
            raise KeyError(
                f"column {name!r} not found; available: {self.names}"
            )
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self.fields)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def __repr__(self):
        inner = ", ".join(f"{f.name}: {np.dtype(f.dtype).name}" for f in self.fields)
        return f"Schema({inner})"

    def select(self, names) -> "Schema":
        return Schema([self[name] for name in names])

    def with_field(self, name: str, dtype) -> "Schema":
        """Schema after adding/replacing a column."""
        fields = [f for f in self.fields if f.name != name]
        fields.append(Field(name, np.dtype(dtype)))
        return Schema(fields)

    def drop(self, names) -> "Schema":
        names = set(names)
        return Schema([f for f in self.fields if f.name not in names])
