"""Scalable data preprocessing (the paper's Section III-B).

Module-level helpers mirror the paper's ``geotorchai.preprocessing``
namespace (Listing 9): :func:`load_geotiff_image` and
:func:`write_geotiff_image` wrap the ``.rtif`` raster DataFrame I/O.
"""

from repro.core.preprocessing.grid.st_manager import STManager
from repro.core.preprocessing.grid.space_partition import SpacePartition
from repro.core.preprocessing.raster.raster_processing import RasterProcessing
from repro.spatial.raster_io import load_raster_folder, write_raster_dataframe


def load_geotiff_image(session, path_to_dataset: str, tiles_per_partition: int = 64):
    """Load a folder of raster tiles as a raster DataFrame
    (paper API: ``gpp.load_geotiff_image``)."""
    return load_raster_folder(session, path_to_dataset, tiles_per_partition)


def write_geotiff_image(raster_df, destination_path: str) -> int:
    """Write a raster DataFrame back to disk
    (paper API: ``gpp.write_geotiff_image``)."""
    return write_raster_dataframe(raster_df, destination_path)


__all__ = [
    "STManager",
    "SpacePartition",
    "RasterProcessing",
    "load_geotiff_image",
    "write_geotiff_image",
]
