"""Grid-based spatiotemporal preprocessing."""

from repro.core.preprocessing.grid.st_manager import STManager
from repro.core.preprocessing.grid.space_partition import SpacePartition

__all__ = ["STManager", "SpacePartition"]
