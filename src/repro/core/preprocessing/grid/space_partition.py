"""``SpacePartition``: spatial partitioning utilities.

The paper pairs ``STManager`` with a ``SpacePartition`` class that
generates grid cells over a dataset's extent and supports re-
partitioning grid datasets to reduce training volume (their ICDE'22
re-partitioning work).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.envelope import Envelope
from repro.geometry.grid import UniformGrid
from repro.geometry.polygon import Polygon
from repro.utils.validation import check_positive


class SpacePartition:
    """Static facade for grid generation and repartitioning."""

    @staticmethod
    def generate_grid(envelope: Envelope, partitions_x: int, partitions_y: int) -> UniformGrid:
        """Equal-cell grid over an envelope."""
        return UniformGrid(envelope, partitions_x, partitions_y)

    @staticmethod
    def generate_grid_cells(
        envelope: Envelope, partitions_x: int, partitions_y: int
    ) -> list[Polygon]:
        """Materialize every grid cell as a polygon, ordered by flat
        cell id (row-major, y outer)."""
        grid = UniformGrid(envelope, partitions_x, partitions_y)
        cells = []
        for j in range(grid.ny):
            for i in range(grid.nx):
                env = grid.cell_envelope(i, j)
                cells.append(
                    Polygon(
                        [
                            (env.min_x, env.min_y),
                            (env.max_x, env.min_y),
                            (env.max_x, env.max_y),
                            (env.min_x, env.max_y),
                        ]
                    )
                )
        return cells

    @staticmethod
    def coarsen_st_tensor(tensor: np.ndarray, factor_y: int, factor_x: int) -> np.ndarray:
        """Reduce a (T, H, W, C) tensor's spatial resolution by summing
        ``factor_y`` x ``factor_x`` blocks — the volume-reduction
        re-partitioning the paper cites for cutting training time."""
        check_positive(factor_y, "factor_y")
        check_positive(factor_x, "factor_x")
        t, h, w, c = tensor.shape
        if h % factor_y or w % factor_x:
            raise ValueError(
                f"grid ({h}, {w}) not divisible by factors "
                f"({factor_y}, {factor_x})"
            )
        reshaped = tensor.reshape(
            t, h // factor_y, factor_y, w // factor_x, factor_x, c
        )
        return reshaped.sum(axis=(2, 4))

    @staticmethod
    def stratified_sample_ids(
        cell_ids: np.ndarray, fraction: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Spatially stratified sampling: keep ~``fraction`` of rows
        *within every cell*, preserving the spatial distribution (used
        to build the paper's 1.4M-row subset from one month of trips).
        Returns a boolean keep-mask."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        cell_ids = np.asarray(cell_ids)
        keep = np.zeros(len(cell_ids), dtype=bool)
        for cell in np.unique(cell_ids):
            idx = np.flatnonzero(cell_ids == cell)
            take = max(1, int(round(len(idx) * fraction)))
            keep[rng.choice(idx, size=take, replace=False)] = True
        return keep
