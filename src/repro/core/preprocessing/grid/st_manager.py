"""``STManager``: raw spatiotemporal records -> grid tensors.

Reproduces the paper's Listing 8 API:

.. code-block:: python

    from repro.core.preprocessing.grid import STManager as stm

    spatial_df = stm.add_spatial_points(df=data_df, lat_column="lat",
                                        lon_column="lon",
                                        new_column_alias="point")
    st_df = stm.get_st_grid_dataframe(geo_df=spatial_df, geometry="point",
                                      partitions_x=12, partitions_y=16,
                                      col_date="time_column",
                                      step_duration_sec=1800)
    array = stm.get_st_grid_array(st_df, partitions_x=12, partitions_y=16)

Geometry columns are stored *packed* (struct-of-arrays: ``point__x``
and ``point__y`` float columns), the engine analogue of Sedona's
efficient geometry encoding — in contrast to the eager baseline's one
Python object per row.
"""

from __future__ import annotations

import numpy as np

from repro.engine.aggregates import AggSpec, count
from repro.engine.dataframe import DataFrame
from repro.engine.expressions import col, udf
from repro.geometry.envelope import Envelope
from repro.geometry.grid import UniformGrid
from repro.utils.validation import check_positive


def _x_col(geometry: str) -> str:
    return f"{geometry}__x"


def _y_col(geometry: str) -> str:
    return f"{geometry}__y"


_grid_metrics = None


def _grid_metric_handles():
    """Lazy ``st.grid.*`` metric handles: dense-tensor allocation bytes
    (gauge — the working-set cost of the grid), plus incremental-update
    counters (how many in-place updates ran and how many (cell,
    timestep) entries they touched)."""
    global _grid_metrics
    if _grid_metrics is None:
        from repro import obs

        _grid_metrics = {
            "alloc_bytes": obs.registry.gauge("st.grid.alloc_bytes"),
            "updates": obs.registry.counter("st.grid.updates"),
            "cells_touched": obs.registry.counter("st.grid.cells_touched"),
        }
    return _grid_metrics


def _acquire_grid_tensor(shape) -> np.ndarray:
    """A zeroed float32 grid tensor from the process array pool —
    epoch-over-epoch (or stream-over-stream) rebuilds recycle the same
    dense buffer instead of allocating a fresh one per call."""
    from repro.tensor.pool import default_pool

    tensor = default_pool().acquire(shape, np.float32, zero=True)
    _grid_metric_handles()["alloc_bytes"].set(tensor.nbytes)
    return tensor


class STManager:
    """Static facade for spatiotemporal tensor preparation."""

    @staticmethod
    def add_spatial_points(
        df: DataFrame,
        lat_column: str,
        lon_column: str,
        new_column_alias: str = "point",
    ) -> DataFrame:
        """Attach a packed point-geometry column built from lat/lon."""

        def as_float(values):
            return np.asarray(values, dtype=np.float64)

        return df.with_column(
            _x_col(new_column_alias), udf(as_float, [lon_column], name="x")
        ).with_column(
            _y_col(new_column_alias), udf(as_float, [lat_column], name="y")
        )

    @staticmethod
    def compute_envelope(df: DataFrame, geometry: str = "point") -> Envelope:
        """Stream the dataset once to find its bounding envelope."""
        xname, yname = _x_col(geometry), _y_col(geometry)
        min_x = min_y = np.inf
        max_x = max_y = -np.inf
        for part in df.select(xname, yname).iter_partitions():
            if part.num_rows == 0:
                continue
            xs = part.columns[xname]
            ys = part.columns[yname]
            min_x = min(min_x, float(xs.min()))
            max_x = max(max_x, float(xs.max()))
            min_y = min(min_y, float(ys.min()))
            max_y = max(max_y, float(ys.max()))
        if not np.isfinite(min_x):
            raise ValueError("cannot compute an envelope of an empty DataFrame")
        return Envelope(min_x, max_x, min_y, max_y)

    @staticmethod
    def get_st_grid_dataframe(
        geo_df: DataFrame,
        geometry: str,
        partitions_x: int,
        partitions_y: int,
        col_date: str,
        step_duration_sec: float,
        envelope: Envelope | None = None,
        temporal_origin: float | None = None,
        aggregations: list[AggSpec] | None = None,
    ) -> DataFrame:
        """Aggregate records into (time_step, cell) groups.

        Returns a lazy DataFrame with columns ``time_step``,
        ``cell_id``, ``cell_x``, ``cell_y``, and ``count`` plus any
        extra ``aggregations``.  Records outside the grid envelope are
        dropped (as spatial-join semantics drop non-matching points).
        """
        check_positive(partitions_x, "partitions_x")
        check_positive(partitions_y, "partitions_y")
        check_positive(step_duration_sec, "step_duration_sec")

        if envelope is None:
            envelope = STManager.compute_envelope(geo_df, geometry)
        grid = UniformGrid(envelope, partitions_x, partitions_y)

        if temporal_origin is None:
            temporal_origin = STManager._min_time(geo_df, col_date)

        xname, yname = _x_col(geometry), _y_col(geometry)

        def cell_ids(xs, ys):
            return grid.cell_ids_of_arrays(xs, ys)

        def time_steps(times):
            t = np.asarray(times, dtype=np.float64)
            return np.floor((t - temporal_origin) / step_duration_sec).astype(
                np.int64
            )

        specs = [count(name="count")] + list(aggregations or [])
        st = (
            geo_df.with_column("cell_id", udf(cell_ids, [xname, yname], name="cell"))
            .with_column("time_step", udf(time_steps, [col_date], name="step"))
            .filter(col("cell_id") >= 0)
            .group_by("time_step", "cell_id")
            .agg(*specs)
            .with_column("cell_x", col("cell_id") % partitions_x)
            .with_column("cell_y", col("cell_id") // partitions_x)
        )
        return st

    @staticmethod
    def _min_time(df: DataFrame, col_date: str) -> float:
        lowest = np.inf
        for part in df.select(col_date).iter_partitions():
            if part.num_rows:
                lowest = min(lowest, float(part.columns[col_date].min()))
        if not np.isfinite(lowest):
            raise ValueError("cannot derive a temporal origin from empty data")
        return lowest

    @staticmethod
    def get_st_grid_array(
        st_df: DataFrame,
        partitions_x: int,
        partitions_y: int,
        num_steps: int | None = None,
        value_columns: list[str] | None = None,
    ) -> np.ndarray:
        """Materialize an aggregated DataFrame into a dense
        (T, H, W, C) float32 tensor (H = partitions_y rows, W =
        partitions_x columns, C = one channel per value column).

        The fill streams partition-by-partition; only the output
        tensor is ever fully resident.  The tensor itself comes from
        the process :func:`~repro.tensor.pool.default_pool` (zeroed
        either way), so repeated materializations recycle one buffer —
        hand a tensor you are done with back via
        :meth:`release_st_grid_array` to close the loop.  Allocation
        size is published as the ``st.grid.alloc_bytes`` gauge.
        """
        value_columns = value_columns or ["count"]
        if num_steps is None:
            num_steps = 0
            parts = []
            for part in st_df.iter_partitions():
                parts.append(part)
                if part.num_rows:
                    num_steps = max(
                        num_steps, int(part.columns["time_step"].max()) + 1
                    )
            iterator = iter(parts)
        else:
            iterator = st_df.iter_partitions()

        tensor = _acquire_grid_tensor(
            (num_steps, partitions_y, partitions_x, len(value_columns))
        )
        for part in iterator:
            if part.num_rows == 0:
                continue
            steps = np.asarray(part.columns["time_step"], dtype=np.int64)
            cells = np.asarray(part.columns["cell_id"], dtype=np.int64)
            valid = (steps >= 0) & (steps < num_steps)
            steps, cells = steps[valid], cells[valid]
            ys, xs = cells // partitions_x, cells % partitions_x
            for channel, name in enumerate(value_columns):
                values = np.asarray(part.columns[name], dtype=np.float32)[valid]
                tensor[steps, ys, xs, channel] = values
        return tensor

    @staticmethod
    def update_st_grid_array(
        array: np.ndarray,
        delta,
        partitions_x: int,
        partitions_y: int,
        num_steps: int | None = None,
        value_columns: list[str] | None = None,
    ) -> np.ndarray:
        """Scatter a delta of changed (time_step, cell) aggregates into
        an existing grid tensor, updating only the touched entries —
        the incremental counterpart of :meth:`get_st_grid_array`.

        ``delta`` is a Partition or DataFrame with ``time_step``,
        ``cell_id``, and the value columns — typically
        ``StreamingAggregation.delta()`` from an aggregation keyed by
        ``("time_step", "cell_id")`` over a
        :meth:`Session.stream <repro.engine.Session.stream>`.  Because
        the streamed aggregates are themselves bit-identical to a
        batch recompute, overwriting only the changed entries leaves
        the tensor bit-identical to a from-scratch rebuild over the
        full history — at O(changed cells) cost instead of
        O(T * H * W).

        With ``num_steps=None`` (default) the tensor *grows* when a
        delta reaches a timestep beyond its current extent: a larger
        pooled buffer is acquired, existing contents copied, and the
        old buffer released back to the pool.  The possibly-new tensor
        is returned — always use the return value.  With ``num_steps``
        fixed, out-of-range steps are dropped exactly as
        :meth:`get_st_grid_array` drops them.
        """
        check_positive(partitions_x, "partitions_x")
        check_positive(partitions_y, "partitions_y")
        value_columns = value_columns or ["count"]
        if array.ndim != 4 or array.shape[1:] != (
            partitions_y,
            partitions_x,
            len(value_columns),
        ):
            raise ValueError(
                f"tensor shape {array.shape} does not match "
                f"(T, {partitions_y}, {partitions_x}, {len(value_columns)})"
            )
        parts = (
            [delta]
            if not isinstance(delta, DataFrame)
            else list(delta.iter_partitions())
        )
        parts = [p for p in parts if p.num_rows]
        metrics = _grid_metric_handles()
        metrics["updates"].inc()
        if not parts:
            return array

        if num_steps is None:
            highest = max(
                int(np.asarray(p.columns["time_step"]).max()) for p in parts
            )
            if highest >= array.shape[0]:
                grown = _acquire_grid_tensor(
                    (highest + 1,) + array.shape[1:]
                )
                grown[: array.shape[0]] = array
                STManager.release_st_grid_array(array)
                array = grown
            bound = array.shape[0]
        else:
            bound = num_steps

        touched = 0
        for part in parts:
            steps = np.asarray(part.columns["time_step"], dtype=np.int64)
            cells = np.asarray(part.columns["cell_id"], dtype=np.int64)
            valid = (steps >= 0) & (steps < bound)
            steps, cells = steps[valid], cells[valid]
            ys, xs = cells // partitions_x, cells % partitions_x
            for channel, name in enumerate(value_columns):
                values = np.asarray(part.columns[name], dtype=np.float32)[valid]
                array[steps, ys, xs, channel] = values
            touched += len(steps)
        metrics["cells_touched"].inc(touched)
        return array

    @staticmethod
    def release_st_grid_array(array: np.ndarray) -> bool:
        """Return a tensor obtained from :meth:`get_st_grid_array` /
        :meth:`update_st_grid_array` to the array pool for reuse.
        Only call once nothing references the tensor's contents."""
        from repro.tensor.pool import default_pool

        return default_pool().release(array)

    @staticmethod
    def get_adjacency_dataframe(
        session,
        partitions_x: int,
        partitions_y: int,
        diagonal: bool = False,
    ) -> DataFrame:
        """Cell-adjacency pairs as a DataFrame (``cell_id``,
        ``neighbor_id``) — the "calculating adjacency between grid
        cells" preprocessing step, for graph-style consumers."""
        check_positive(partitions_x, "partitions_x")
        check_positive(partitions_y, "partitions_y")
        grid = UniformGrid(
            Envelope(0, partitions_x, 0, partitions_y),
            partitions_x,
            partitions_y,
        )
        adjacency = grid.adjacency_matrix(diagonal=diagonal)
        cells, neighbors = np.nonzero(adjacency)
        return session.create_dataframe(
            {
                "cell_id": cells.astype(np.int64),
                "neighbor_id": neighbors.astype(np.int64),
            }
        )

    @staticmethod
    def write_st_grid_array(array: np.ndarray, path: str) -> str:
        """Persist a prepared tensor for the datasets module to load."""
        if not path.endswith(".npz"):
            path = path + ".npz"
        np.savez(path.removesuffix(".npz"), st_tensor=array)
        return path

    @staticmethod
    def read_st_grid_array(path: str) -> np.ndarray:
        with np.load(path) as archive:
            return archive["st_tensor"]
