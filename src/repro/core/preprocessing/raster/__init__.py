"""Raster preprocessing: transformations, map algebra, and features."""

from repro.core.preprocessing.raster.raster_processing import RasterProcessing
from repro.core.preprocessing.raster.glcm import glcm_matrix, glcm_features
from repro.core.preprocessing.raster import indices
from repro.core.preprocessing.raster import features

__all__ = [
    "RasterProcessing",
    "glcm_matrix",
    "glcm_features",
    "indices",
    "features",
]
