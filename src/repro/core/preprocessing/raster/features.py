"""Handcrafted feature vectors for feature-fusion models.

The paper's Section V-E extracts, per image:

- six **textural** features (GLCM contrast, dissimilarity,
  correlation, homogeneity, momentum/ASM, energy), and
- several **spectral** features (NDVI, NDWI, ... means), seven for
  EuroSAT and three for SAT-6 (which lacks the short-wave infrared
  band needed by many indices).

Spectral indices need to know which band plays which role; the role
maps below follow the synthetic datasets' band layouts (for real
Sentinel-2/airborne data, pass your own role map).
"""

from __future__ import annotations

import numpy as np

from repro.core.preprocessing.raster import indices as idx
from repro.core.preprocessing.raster.glcm import glcm_feature_vector

# Band-role maps: role -> band index.
EUROSAT_ROLES = {
    "blue": 1,
    "green": 2,
    "red": 3,
    "nir": 7,
    "swir": 11,
}
SAT6_ROLES = {
    "red": 0,
    "green": 1,
    "blue": 2,
    "nir": 3,
}


def textural_features(image: np.ndarray, band_index: int = 0) -> np.ndarray:
    """The six GLCM texture features of one band (float32 vector)."""
    return glcm_feature_vector(image[band_index])


def spectral_features(image: np.ndarray, roles: dict) -> np.ndarray:
    """Mean spectral-index values derivable from the available roles.

    With nir+red+green+blue+swir (EuroSAT-style) this yields seven
    features; without swir (SAT-6-style) only the three indices that
    need no short-wave infrared band — matching the paper's counts.
    """
    feats: list[float] = []
    has = roles.__contains__

    if has("nir") and has("red"):
        feats.append(float(idx.ndvi(image[roles["nir"]], image[roles["red"]]).mean()))
    if has("green") and has("nir"):
        feats.append(float(idx.ndwi(image[roles["green"]], image[roles["nir"]]).mean()))
    if has("nir") and has("red"):
        feats.append(
            float(idx.savi(image[roles["nir"]], image[roles["red"]]).mean())
        )
    # Extended set, available only with a short-wave infrared band —
    # the paper extracts seven spectral features from EuroSAT but only
    # three from SAT-6 ("lacks the short-wave infrared band"); its
    # exact index list is unspecified, so this recipe matches the
    # counts: {NDVI, NDWI, SAVI} without SWIR, plus
    # {NDBI, NBR, EVI, MNDWI} with it.
    if has("swir"):
        if has("nir"):
            feats.append(
                float(idx.ndbi(image[roles["swir"]], image[roles["nir"]]).mean())
            )
            feats.append(
                float(idx.nbr(image[roles["nir"]], image[roles["swir"]]).mean())
            )
        if has("nir") and has("red") and has("blue"):
            feats.append(
                float(
                    idx.evi(
                        image[roles["nir"]], image[roles["red"]], image[roles["blue"]]
                    ).mean()
                )
            )
        if has("green"):
            feats.append(
                float(
                    idx.normalized_difference(
                        image[roles["green"]], image[roles["swir"]]
                    ).mean()
                )
            )
    if not feats:
        raise ValueError(
            f"no spectral indices derivable from roles {sorted(roles)}"
        )
    return np.asarray(feats, dtype=np.float32)


def deepsat_feature_vector(
    image: np.ndarray, roles: dict, texture_band: int = 0
) -> np.ndarray:
    """The paper's DeepSAT-V2 recipe: 6 textural + spectral features."""
    return np.concatenate(
        [textural_features(image, texture_band), spectral_features(image, roles)]
    )
