"""Gray-Level Co-occurrence Matrix texture features.

DeepSAT-V2 fuses handcrafted texture features with CNN features; the
paper's preprocessing module extracts GLCM contrast, dissimilarity,
homogeneity, ASM/energy, and correlation.  This implementation follows
Hall-Beyer's tutorial conventions: the band is quantized to ``levels``
gray levels, co-occurrences are accumulated for the given pixel
offsets, and the matrix is symmetrized and normalized before feature
computation.
"""

from __future__ import annotations

import numpy as np

DEFAULT_OFFSETS = ((0, 1), (1, 0), (1, 1), (1, -1))
FEATURE_NAMES = (
    "contrast",
    "dissimilarity",
    "homogeneity",
    "asm",
    "energy",
    "correlation",
)


def quantize(band: np.ndarray, levels: int) -> np.ndarray:
    """Quantize a band to integer gray levels 0..levels-1."""
    band = np.asarray(band, dtype=np.float64)
    low, high = band.min(), band.max()
    if high <= low:
        return np.zeros(band.shape, dtype=np.int64)
    scaled = (band - low) / (high - low) * (levels - 1)
    return np.clip(np.rint(scaled), 0, levels - 1).astype(np.int64)


def glcm_matrix(
    band: np.ndarray,
    levels: int = 16,
    offsets=DEFAULT_OFFSETS,
    symmetric: bool = True,
) -> np.ndarray:
    """Normalized co-occurrence matrix summed over offsets."""
    q = quantize(band, levels)
    h, w = q.shape
    matrix = np.zeros((levels, levels), dtype=np.float64)
    for dy, dx in offsets:
        y0, y1 = max(0, -dy), min(h, h - dy)
        x0, x1 = max(0, -dx), min(w, w - dx)
        a = q[y0:y1, x0:x1].ravel()
        b = q[y0 + dy : y1 + dy, x0 + dx : x1 + dx].ravel()
        np.add.at(matrix, (a, b), 1.0)
    if symmetric:
        matrix = matrix + matrix.T
    total = matrix.sum()
    if total > 0:
        matrix /= total
    return matrix


def glcm_features(
    band: np.ndarray, levels: int = 16, offsets=DEFAULT_OFFSETS
) -> dict:
    """Compute the six standard GLCM features of a band.

    Returns a dict keyed by :data:`FEATURE_NAMES`.
    """
    p = glcm_matrix(band, levels=levels, offsets=offsets)
    i = np.arange(levels)[:, None]
    j = np.arange(levels)[None, :]
    diff = i - j

    contrast = float((p * diff**2).sum())
    dissimilarity = float((p * np.abs(diff)).sum())
    homogeneity = float((p / (1.0 + diff**2)).sum())
    asm = float((p**2).sum())
    energy = float(np.sqrt(asm))

    mu_i = float((p * i).sum())
    mu_j = float((p * j).sum())
    var_i = float((p * (i - mu_i) ** 2).sum())
    var_j = float((p * (j - mu_j) ** 2).sum())
    denom = np.sqrt(var_i * var_j)
    if denom > 1e-12:
        correlation = float((p * (i - mu_i) * (j - mu_j)).sum() / denom)
    else:
        correlation = 0.0

    return {
        "contrast": contrast,
        "dissimilarity": dissimilarity,
        "homogeneity": homogeneity,
        "asm": asm,
        "energy": energy,
        "correlation": correlation,
    }


def glcm_feature_vector(
    band: np.ndarray, levels: int = 16, offsets=DEFAULT_OFFSETS
) -> np.ndarray:
    """The six features as a float32 vector ordered by
    :data:`FEATURE_NAMES`."""
    features = glcm_features(band, levels=levels, offsets=offsets)
    return np.asarray(
        [features[name] for name in FEATURE_NAMES], dtype=np.float32
    )
