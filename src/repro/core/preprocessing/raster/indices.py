"""Spectral indices (map algebra over raster bands).

All functions take (H, W) band arrays and return an (H, W) float32
index.  The normalized-difference family uses a small epsilon to keep
zero-denominator pixels finite.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-8


def normalized_difference(band_a: np.ndarray, band_b: np.ndarray) -> np.ndarray:
    """(a - b) / (a + b) — the generic normalized difference index."""
    a = np.asarray(band_a, dtype=np.float64)
    b = np.asarray(band_b, dtype=np.float64)
    return ((a - b) / (a + b + _EPS)).astype(np.float32)


def ndvi(nir: np.ndarray, red: np.ndarray) -> np.ndarray:
    """Normalized Difference Vegetation Index."""
    return normalized_difference(nir, red)


def ndwi(green: np.ndarray, nir: np.ndarray) -> np.ndarray:
    """Normalized Difference Water Index (McFeeters)."""
    return normalized_difference(green, nir)


def ndbi(swir: np.ndarray, nir: np.ndarray) -> np.ndarray:
    """Normalized Difference Built-up Index."""
    return normalized_difference(swir, nir)


def nbr(nir: np.ndarray, swir: np.ndarray) -> np.ndarray:
    """Normalized Burn Ratio."""
    return normalized_difference(nir, swir)


def savi(nir: np.ndarray, red: np.ndarray, soil_factor: float = 0.5) -> np.ndarray:
    """Soil-Adjusted Vegetation Index."""
    nir = np.asarray(nir, dtype=np.float64)
    red = np.asarray(red, dtype=np.float64)
    return (
        (nir - red) / (nir + red + soil_factor + _EPS) * (1.0 + soil_factor)
    ).astype(np.float32)


def evi(
    nir: np.ndarray,
    red: np.ndarray,
    blue: np.ndarray,
    gain: float = 2.5,
    c1: float = 6.0,
    c2: float = 7.5,
    offset: float = 1.0,
) -> np.ndarray:
    """Enhanced Vegetation Index."""
    nir = np.asarray(nir, dtype=np.float64)
    red = np.asarray(red, dtype=np.float64)
    blue = np.asarray(blue, dtype=np.float64)
    return (
        gain * (nir - red) / (nir + c1 * red - c2 * blue + offset + _EPS)
    ).astype(np.float32)


def band_mean(band: np.ndarray) -> float:
    return float(np.asarray(band, dtype=np.float64).mean())


def band_mode(band: np.ndarray, bins: int = 64) -> float:
    """Approximate mode via histogram binning."""
    band = np.asarray(band, dtype=np.float64).ravel()
    counts, edges = np.histogram(band, bins=bins)
    peak = int(np.argmax(counts))
    return float((edges[peak] + edges[peak + 1]) / 2)
