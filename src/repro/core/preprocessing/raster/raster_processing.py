"""``RasterProcessing``: distributed raster transformation & map
algebra over raster DataFrames (rows are :class:`RasterTile`).

Mirrors the paper's Listing 9 API, e.g.::

    appended_df = RasterProcessing.append_normalized_difference_index(
        rs_df, band_index1=0, band_index2=1)

Every method is lazy: it appends a ``map_partitions`` step to the
raster DataFrame's plan, so chained transformations fuse into one
streaming pass over the tiles — the basis of the Table VIII offline
pre-transformation experiment.
"""

from __future__ import annotations

import numpy as np

from repro.core.preprocessing.raster import indices as idx
from repro.core.preprocessing.raster.glcm import glcm_feature_vector
from repro.engine.dataframe import DataFrame
from repro.engine.partition import Partition


def _map_tiles(df: DataFrame, tile_fn, label: str, tile_column: str = "tile") -> DataFrame:
    """Apply ``tile_fn(RasterTile) -> RasterTile`` to every tile row,
    refreshing the n_bands metadata column."""

    def transform(part: Partition) -> Partition:
        tiles = part.columns[tile_column]
        out = np.empty(len(tiles), dtype=object)
        for i in range(len(tiles)):
            out[i] = tile_fn(tiles[i])
        new = part.with_column(tile_column, out)
        if "n_bands" in part.columns:
            new = new.with_column(
                "n_bands",
                np.asarray([t.num_bands for t in out], dtype=np.int64),
            )
        return new

    return df.map_partitions(transform, label=label)


class RasterProcessing:
    """Static facade over distributed raster operations."""

    # ------------------------------------------------------------------
    # Transformation operations
    # ------------------------------------------------------------------
    @staticmethod
    def append_normalized_difference_index(
        df: DataFrame, band_index1: int, band_index2: int, tile_column: str = "tile"
    ) -> DataFrame:
        """Append (b1 - b2) / (b1 + b2) as a new last band."""

        def fn(tile):
            band = idx.normalized_difference(
                tile.band(band_index1), tile.band(band_index2)
            )
            return tile.append_band(band)

        return _map_tiles(df, fn, f"append_ndi({band_index1},{band_index2})", tile_column)

    @staticmethod
    def normalize_band(df: DataFrame, band_index: int, tile_column: str = "tile") -> DataFrame:
        """Min-max normalize one band to [0, 1] in place."""

        def fn(tile):
            data = tile.data.copy()
            band = data[band_index]
            low, high = band.min(), band.max()
            if high > low:
                data[band_index] = (band - low) / (high - low)
            else:
                data[band_index] = 0.0
            return tile.with_data(data)

        return _map_tiles(df, fn, f"normalize_band({band_index})", tile_column)

    @staticmethod
    def append_band(df: DataFrame, band_fn, label: str = "append_band",
                    tile_column: str = "tile") -> DataFrame:
        """Append ``band_fn(tile) -> (H, W) array`` as a new band."""

        def fn(tile):
            return tile.append_band(band_fn(tile))

        return _map_tiles(df, fn, label, tile_column)

    @staticmethod
    def delete_band(df: DataFrame, band_index: int, tile_column: str = "tile") -> DataFrame:
        """Remove one band from every tile."""

        def fn(tile):
            return tile.delete_band(band_index)

        return _map_tiles(df, fn, f"delete_band({band_index})", tile_column)

    @staticmethod
    def mask_band_on_threshold(
        df: DataFrame,
        band_index: int,
        threshold: float,
        upper: bool = True,
        fill: float = 0.0,
        tile_column: str = "tile",
    ) -> DataFrame:
        """Zero out (or fill) pixels above (``upper``) or below the
        threshold in one band."""

        def fn(tile):
            data = tile.data.copy()
            band = data[band_index]
            mask = band > threshold if upper else band < threshold
            band = band.copy()
            band[mask] = fill
            data[band_index] = band
            return tile.with_data(data)

        side = "upper" if upper else "lower"
        return _map_tiles(df, fn, f"mask_band({band_index},{side})", tile_column)

    # ------------------------------------------------------------------
    # Map algebra operations
    # ------------------------------------------------------------------
    @staticmethod
    def band_arithmetic(
        df: DataFrame,
        band_index1: int,
        band_index2: int,
        operation: str,
        tile_column: str = "tile",
    ) -> DataFrame:
        """Append ``b1 <op> b2`` as a new band; op in
        {add, subtract, multiply, divide}."""
        ops = {
            "add": np.add,
            "subtract": np.subtract,
            "multiply": np.multiply,
            "divide": lambda a, b: a / (b + 1e-8),
        }
        if operation not in ops:
            raise ValueError(
                f"unknown operation {operation!r}; expected one of {sorted(ops)}"
            )
        fn_op = ops[operation]

        def fn(tile):
            band = fn_op(
                tile.band(band_index1).astype(np.float64),
                tile.band(band_index2).astype(np.float64),
            ).astype(np.float32)
            return tile.append_band(band)

        return _map_tiles(df, fn, f"band_{operation}", tile_column)

    @staticmethod
    def bitwise_band_operation(
        df: DataFrame,
        band_index1: int,
        band_index2: int,
        operation: str = "and",
        tile_column: str = "tile",
    ) -> DataFrame:
        """Append bitwise {and, or, xor} of two integer-quantized
        bands as a new band."""
        ops = {"and": np.bitwise_and, "or": np.bitwise_or, "xor": np.bitwise_xor}
        if operation not in ops:
            raise ValueError(f"unknown bitwise operation {operation!r}")
        fn_op = ops[operation]

        def fn(tile):
            a = tile.band(band_index1).astype(np.int64)
            b = tile.band(band_index2).astype(np.int64)
            return tile.append_band(fn_op(a, b).astype(np.float32))

        return _map_tiles(df, fn, f"bitwise_{operation}", tile_column)

    # ------------------------------------------------------------------
    # Feature extraction
    # ------------------------------------------------------------------
    @staticmethod
    def get_band_means(df: DataFrame, tile_column: str = "tile") -> DataFrame:
        """Add a ``band_means`` column: per-band mean vector."""

        def transform(part: Partition) -> Partition:
            tiles = part.columns[tile_column]
            means = np.empty(len(tiles), dtype=object)
            for i, tile in enumerate(tiles):
                means[i] = tile.data.mean(axis=(1, 2)).astype(np.float32)
            return part.with_column("band_means", means)

        return df.map_partitions(transform, label="band_means")

    @staticmethod
    def extract_glcm_features(
        df: DataFrame,
        band_index: int = 0,
        levels: int = 16,
        tile_column: str = "tile",
    ) -> DataFrame:
        """Add a ``glcm_features`` column: the six GLCM texture
        features of one band as a float32 vector (contrast,
        dissimilarity, homogeneity, ASM, energy, correlation)."""

        def transform(part: Partition) -> Partition:
            tiles = part.columns[tile_column]
            feats = np.empty(len(tiles), dtype=object)
            for i, tile in enumerate(tiles):
                feats[i] = glcm_feature_vector(tile.band(band_index), levels=levels)
            return part.with_column("glcm_features", feats)

        return df.map_partitions(transform, label="glcm_features")
