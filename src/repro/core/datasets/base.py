"""Base classes for grid and raster datasets.

Grid datasets implement the paper's three temporal representations
(Section II-B / Listings 2-4):

- **basic** — ``(x_t, y_{t+lead})`` pairs;
- **sequential** — history/prediction windows for ConvLSTM-style
  models (``set_sequential_representation``);
- **periodical** — closeness / period / trend feature groups for
  ST-ResNet-style models (``set_periodical_representation``).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.validation import check_positive


class GridDataset(Dataset):
    """A grid-based spatiotemporal dataset over a (T, H, W, C) tensor.

    Samples are returned channel-first (PyTorch convention):
    basic/sequential items are ``(x, y)`` arrays; periodical items are
    dicts with keys ``x_closeness``, ``x_period``, ``x_trend``, and
    ``y_data``.
    """

    BASIC = "basic"
    SEQUENTIAL = "sequential"
    PERIODICAL = "periodical"

    def __init__(
        self,
        tensor: np.ndarray,
        lead_time: int = 1,
        steps_per_period: int = 24,
        steps_per_trend: int = 24 * 7,
        normalize: bool = True,
        transform=None,
    ):
        tensor = np.asarray(tensor, dtype=np.float32)
        if tensor.ndim != 4:
            raise ValueError(
                f"grid tensor must be (T, H, W, C), got shape {tensor.shape}"
            )
        check_positive(lead_time, "lead_time")
        self._raw_min = float(tensor.min())
        self._raw_max = float(tensor.max())
        if normalize and self._raw_max > self._raw_min:
            tensor = (tensor - self._raw_min) / (self._raw_max - self._raw_min)
        self.normalized = normalize
        # store channel-first frames: (T, C, H, W)
        self.frames = np.ascontiguousarray(tensor.transpose(0, 3, 1, 2))
        self.lead_time = lead_time
        self.steps_per_period = steps_per_period
        self.steps_per_trend = steps_per_trend
        self.transform = transform
        self._mode = self.BASIC
        self._history_length = None
        self._prediction_length = None
        self._len_closeness = None
        self._len_period = None
        self._len_trend = None

    # ------------------------------------------------------------------
    # Shape metadata
    # ------------------------------------------------------------------
    @property
    def num_timesteps(self) -> int:
        return self.frames.shape[0]

    @property
    def num_channels(self) -> int:
        return self.frames.shape[1]

    @property
    def grid_height(self) -> int:
        return self.frames.shape[2]

    @property
    def grid_width(self) -> int:
        return self.frames.shape[3]

    def denormalize(self, values: np.ndarray) -> np.ndarray:
        """Map normalized predictions back to the original scale."""
        if not self.normalized or self._raw_max <= self._raw_min:
            return values
        return values * (self._raw_max - self._raw_min) + self._raw_min

    @property
    def scale(self) -> float:
        """Multiplier from normalized-error to raw-error units."""
        if not self.normalized or self._raw_max <= self._raw_min:
            return 1.0
        return self._raw_max - self._raw_min

    # ------------------------------------------------------------------
    # Representation switches (paper Listings 2-4)
    # ------------------------------------------------------------------
    def set_basic_representation(self, lead_time: int | None = None) -> "GridDataset":
        if lead_time is not None:
            check_positive(lead_time, "lead_time")
            self.lead_time = lead_time
        self._mode = self.BASIC
        return self

    def set_sequential_representation(
        self, history_length: int, prediction_length: int
    ) -> "GridDataset":
        check_positive(history_length, "history_length")
        check_positive(prediction_length, "prediction_length")
        if history_length + prediction_length > self.num_timesteps:
            raise ValueError(
                f"history {history_length} + prediction {prediction_length} "
                f"exceeds {self.num_timesteps} timesteps"
            )
        self._history_length = history_length
        self._prediction_length = prediction_length
        self._mode = self.SEQUENTIAL
        return self

    def set_periodical_representation(
        self,
        len_closeness: int = 3,
        len_period: int = 4,
        len_trend: int = 4,
    ) -> "GridDataset":
        check_positive(len_closeness, "len_closeness")
        check_positive(len_period, "len_period")
        check_positive(len_trend, "len_trend")
        offset = max(
            len_closeness,
            len_period * self.steps_per_period,
            len_trend * self.steps_per_trend,
        )
        if offset >= self.num_timesteps:
            raise ValueError(
                f"periodical offsets need {offset + 1} timesteps, dataset "
                f"has {self.num_timesteps} (reduce len_trend or "
                f"steps_per_trend)"
            )
        self._len_closeness = len_closeness
        self._len_period = len_period
        self._len_trend = len_trend
        self._mode = self.PERIODICAL
        return self

    @property
    def representation(self) -> str:
        return self._mode

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _periodical_offset(self) -> int:
        return max(
            self._len_closeness,
            self._len_period * self.steps_per_period,
            self._len_trend * self.steps_per_trend,
        )

    def __len__(self) -> int:
        t = self.num_timesteps
        if self._mode == self.BASIC:
            return max(0, t - self.lead_time)
        if self._mode == self.SEQUENTIAL:
            return max(0, t - self._history_length - self._prediction_length + 1)
        return max(0, t - self._periodical_offset())

    def __getitem__(self, index: int):
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"index {index} out of range for {len(self)} samples")
        if self._mode == self.BASIC:
            item = (self.frames[index], self.frames[index + self.lead_time])
        elif self._mode == self.SEQUENTIAL:
            h, p = self._history_length, self._prediction_length
            item = (
                self.frames[index : index + h],
                self.frames[index + h : index + h + p],
            )
        else:
            item = self._periodical_item(index)
        if self.transform is not None:
            item = self.transform(item)
        return item

    def _periodical_item(self, index: int) -> dict:
        target = self._periodical_offset() + index
        closeness = self.frames[target - self._len_closeness : target]
        period_steps = [
            target - k * self.steps_per_period
            for k in range(self._len_period, 0, -1)
        ]
        trend_steps = [
            target - k * self.steps_per_trend
            for k in range(self._len_trend, 0, -1)
        ]
        c, h, w = (
            self.num_channels,
            self.grid_height,
            self.grid_width,
        )
        return {
            # stacked on the channel axis, ST-ResNet style: (L*C, H, W)
            "x_closeness": closeness.reshape(-1, h, w),
            "x_period": self.frames[period_steps].reshape(-1, h, w),
            "x_trend": self.frames[trend_steps].reshape(-1, h, w),
            "y_data": self.frames[target],
            "t_index": np.asarray(target, dtype=np.int64),
        }


class RasterDataset(Dataset):
    """A raster imagery dataset over (N, C, H, W) images.

    Items are ``(image, label)`` or — when
    ``include_additional_features`` — ``(image, label, features)``
    (Listing 1).  For segmentation datasets ``labels`` holds (N, H, W)
    masks.  ``bands`` selects a subset of spectral bands.
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        bands=None,
        transform=None,
        include_additional_features: bool = False,
        additional_features: np.ndarray | None = None,
    ):
        images = np.asarray(images, dtype=np.float32)
        if images.ndim != 4:
            raise ValueError(
                f"raster images must be (N, C, H, W), got shape {images.shape}"
            )
        if bands is not None:
            bands = list(bands)
            if any(not 0 <= b < images.shape[1] for b in bands):
                raise ValueError(
                    f"band selection {bands} out of range for "
                    f"{images.shape[1]}-band images"
                )
            images = images[:, bands]
        self.images = images
        self.labels = np.asarray(labels)
        if len(self.labels) != len(self.images):
            raise ValueError(
                f"{len(self.images)} images but {len(self.labels)} labels"
            )
        self.transform = transform
        self.include_additional_features = include_additional_features
        if include_additional_features:
            if additional_features is None:
                additional_features = self._auto_features()
            self.additional_features = np.asarray(
                additional_features, dtype=np.float32
            )
            if len(self.additional_features) != len(self.images):
                raise ValueError("feature count does not match image count")
        else:
            self.additional_features = None

    def _auto_features(self) -> np.ndarray:
        """Automatically extract the commonly-used features the paper
        mentions: GLCM texture of band 0 plus per-band means."""
        from repro.core.preprocessing.raster.glcm import glcm_feature_vector

        features = []
        for image in self.images:
            texture = glcm_feature_vector(image[0])
            means = image.mean(axis=(1, 2)).astype(np.float32)
            features.append(np.concatenate([texture, means]))
        return np.stack(features)

    @property
    def num_bands(self) -> int:
        return self.images.shape[1]

    @property
    def image_height(self) -> int:
        return self.images.shape[2]

    @property
    def image_width(self) -> int:
        return self.images.shape[3]

    @property
    def num_features(self) -> int:
        if self.additional_features is None:
            return 0
        return self.additional_features.shape[1]

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int):
        image = self.images[index]
        if self.transform is not None:
            image = self.transform(image)
        if self.additional_features is not None:
            return image, self.labels[index], self.additional_features[index]
        return image, self.labels[index]
