"""Synthetic data generators (the no-network substitute for the
paper's public datasets; see DESIGN.md §2).

The grid generators plant exactly the structures whose exploitation
differentiates the paper's models:

- a *closeness* component — a spatially smooth AR(1) process, learnable
  from the most recent frames;
- a *period* component — a daily cycle with per-cell amplitude and
  phase, learnable from frames one day back;
- a *trend* component — a weekly (weekday/weekend) modulation,
  learnable from frames one week back;
- optional *advection* — the field drifts spatially over time, a
  dynamic that favours sequence models (ConvLSTM) and dominates the
  weather-style datasets.

The raster generators plant class-dependent *spectral signatures*
(per-band means, so normalized-difference indices carry class signal)
and class-dependent *texture* (correlation length, so GLCM features
carry class signal) — the two feature families DeepSAT-V2 fuses.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.utils.rng import default_rng


def _smooth_field(rng, shape, sigma: float) -> np.ndarray:
    """A zero-mean, unit-variance, spatially smooth random field."""
    field = rng.standard_normal(shape)
    field = ndimage.gaussian_filter(field, sigma=sigma, mode="wrap")
    std = field.std()
    return field / std if std > 0 else field


def generate_grid_tensor(
    num_steps: int,
    height: int,
    width: int,
    channels: int = 2,
    steps_per_day: int = 24,
    days_per_week: int = 7,
    seed: int = 0,
    daily_amp: float = 1.0,
    weekly_amp: float = 0.5,
    ar_coeff: float = 0.6,
    ar_amp: float = 0.4,
    advection: float = 0.0,
    global_amp: float = 0.0,
    global_coeff: float = 0.6,
    noise: float = 0.1,
    base_level: float = 3.0,
    nonneg: bool = True,
) -> np.ndarray:
    """Generate a (T, H, W, C) spatiotemporal tensor.

    Traffic-style datasets use strong ``daily_amp``/``weekly_amp`` and
    moderate ``ar_amp``; weather-style datasets use strong
    ``ar_amp``/``advection`` and mild periodicity.
    """
    rng = default_rng(seed, label="grid_tensor")
    t_axis = np.arange(num_steps)

    tensor = np.zeros((num_steps, height, width, channels), dtype=np.float64)
    for c in range(channels):
        base = base_level * (0.5 + 0.5 * _smooth_field(rng, (height, width), 2.0) ** 2)

        # Per-cell daily profile: two sharp rush-hour bumps whose
        # timing/width vary smoothly over space.  Sharp bumps are
        # nearly unpredictable from a few recent frames but repeat
        # day over day — the signal that periodical features capture.
        hours = np.arange(steps_per_day) / steps_per_day  # in [0, 1)
        peak1 = 0.33 + 0.05 * _smooth_field(rng, (height, width), 3.0)
        peak2 = 0.72 + 0.05 * _smooth_field(rng, (height, width), 3.0)
        width1 = 0.035 + 0.01 * np.abs(_smooth_field(rng, (height, width), 3.0))
        width2 = 0.045 + 0.01 * np.abs(_smooth_field(rng, (height, width), 3.0))
        mix = 0.5 + 0.3 * _smooth_field(rng, (height, width), 3.0)

        def bump(center, widths):
            # circular distance in day-fraction space
            delta = np.abs(hours[:, None, None] - center[None])
            delta = np.minimum(delta, 1.0 - delta)
            return np.exp(-0.5 * (delta / widths[None]) ** 2)

        profile = mix[None] * bump(peak1, width1) + (1.0 - mix)[None] * bump(
            peak2, width2
        )  # (steps_per_day, H, W)
        amp = daily_amp * (0.6 + 0.4 * np.abs(_smooth_field(rng, (height, width), 3.0)))

        weekday = (t_axis // steps_per_day) % days_per_week
        weekend = (weekday >= days_per_week - 2).astype(np.float64)
        # Weekly trend scales the daily profile down on weekends.
        weekly_factor = 1.0 - weekly_amp * weekend
        # Slow day-to-day amplitude drift (trend features help here).
        num_days = num_steps // steps_per_day + 2
        day_drift = 1.0 + 0.1 * np.cumsum(rng.standard_normal(num_days)) / np.sqrt(
            num_days
        )
        daily = (
            amp[None]
            * profile[t_axis % steps_per_day]
            * (weekly_factor * day_drift[t_axis // steps_per_day])[:, None, None]
        )

        ar = np.zeros((num_steps, height, width))
        state = _smooth_field(rng, (height, width), 2.0)
        for t in range(num_steps):
            innovation = _smooth_field(rng, (height, width), 2.0)
            state = ar_coeff * state + np.sqrt(1 - ar_coeff**2) * innovation
            if advection:
                state = ndimage.shift(
                    state, (advection, advection / 2), mode="wrap", order=1
                )
            ar[t] = state

        field = base[None] + daily + ar_amp * ar

        if global_amp:
            # A citywide latent factor (weather, events) with smooth
            # per-cell loadings: predictable from *global* context in
            # recent frames but not from any local neighbourhood —
            # the long-range dependence ConvPlus-style global pooling
            # exploits.
            g = np.zeros(num_steps)
            g_state = 0.0
            for t in range(num_steps):
                g_state = global_coeff * g_state + np.sqrt(
                    1 - global_coeff**2
                ) * rng.standard_normal()
                g[t] = g_state
            loading = _smooth_field(rng, (height, width), 1.0)
            field = field + global_amp * g[:, None, None] * loading[None]

        field += noise * rng.standard_normal(field.shape)
        tensor[..., c] = field

    if nonneg:
        tensor = np.maximum(tensor, 0.0)
    return tensor.astype(np.float32)


def generate_traffic_tensor(
    num_steps: int,
    height: int,
    width: int,
    channels: int = 2,
    steps_per_day: int = 24,
    seed: int = 0,
) -> np.ndarray:
    """Traffic/flow-style tensor: periodicity-dominated counts."""
    return generate_grid_tensor(
        num_steps,
        height,
        width,
        channels,
        steps_per_day=steps_per_day,
        seed=seed,
        daily_amp=3.5,
        weekly_amp=0.5,
        ar_coeff=0.5,
        ar_amp=0.3,
        advection=0.0,
        global_amp=0.8,
        global_coeff=0.9,
        noise=0.08,
        base_level=2.0,
        nonneg=True,
    )


def generate_weather_tensor(
    num_steps: int,
    height: int,
    width: int,
    channels: int = 1,
    steps_per_day: int = 24,
    seed: int = 0,
) -> np.ndarray:
    """Weather-style tensor: persistence/advection-dominated smooth
    fields with a mild diurnal cycle."""
    return generate_grid_tensor(
        num_steps,
        height,
        width,
        channels,
        steps_per_day=steps_per_day,
        seed=seed,
        daily_amp=0.35,
        weekly_amp=0.0,
        ar_coeff=0.95,
        ar_amp=1.4,
        advection=0.6,
        noise=0.03,
        base_level=2.0,
        nonneg=False,
    )


def generate_trip_records(
    num_records: int,
    envelope,
    num_steps: int,
    step_seconds: float = 1800.0,
    seed: int = 0,
    hotspot_count: int = 6,
):
    """Synthetic NYC-trip-style point records.

    Returns dict columns: ``lat``, ``lon``, ``dropoff_lat``,
    ``dropoff_lon``, ``pickup_time`` (epoch seconds from 0), and
    ``passenger_count``.  Points cluster around hotspots and arrive
    with a daily intensity cycle — the workload of the Figure 8
    tensor-preparation experiment and the source of the
    YellowTrip-NYC dataset.
    """
    rng = default_rng(seed, label="trip_records")
    cx = rng.uniform(envelope.min_x, envelope.max_x, size=hotspot_count)
    cy = rng.uniform(envelope.min_y, envelope.max_y, size=hotspot_count)
    spread_x = envelope.width * 0.05
    spread_y = envelope.height * 0.05

    # Points are NOT clipped to the envelope: a small fraction falls
    # outside and is dropped by the grid assignment, mirroring real
    # trip records with out-of-city coordinates (and avoiding point
    # mass exactly on cell boundaries, where containment conventions
    # legitimately differ between systems).
    which = rng.integers(0, hotspot_count, size=num_records)
    lon = cx[which] + rng.standard_normal(num_records) * spread_x
    lat = cy[which] + rng.standard_normal(num_records) * spread_y
    drop_which = rng.integers(0, hotspot_count, size=num_records)
    dropoff_lon = cx[drop_which] + rng.standard_normal(num_records) * spread_x
    dropoff_lat = cy[drop_which] + rng.standard_normal(num_records) * spread_y

    # Daily arrival-rate cycle over the time steps.
    steps_per_day = max(1, int(86400 / step_seconds))
    step_axis = np.arange(num_steps)
    intensity = 1.0 + 0.8 * np.sin(2 * np.pi * step_axis / steps_per_day)
    intensity = np.maximum(intensity, 0.05)
    probs = intensity / intensity.sum()
    steps = rng.choice(num_steps, size=num_records, p=probs)
    times = steps * step_seconds + rng.uniform(0, step_seconds, size=num_records)

    return {
        "lat": lat,
        "lon": lon,
        "dropoff_lat": dropoff_lat,
        "dropoff_lon": dropoff_lon,
        "pickup_time": times,
        "passenger_count": rng.integers(1, 5, size=num_records).astype(np.int64),
    }


# ----------------------------------------------------------------------
# Raster generators
# ----------------------------------------------------------------------
def class_spectral_signatures(num_classes: int, bands: int, rng) -> np.ndarray:
    """Per-class mean reflectance vectors, well separated in band space."""
    signatures = rng.uniform(0.35, 0.65, size=(num_classes, bands))
    # Push classes apart along two principal bands.  The shift shrinks
    # with the band count so that total spectral separability stays
    # comparable across 4-band (SAT) and 13-band (EuroSAT) datasets.
    shift = 0.42 / np.sqrt(bands)
    for k in range(num_classes):
        emphasis = rng.choice(bands, size=min(2, bands), replace=False)
        signatures[k, emphasis] = np.clip(
            signatures[k, emphasis] + (shift if k % 2 == 0 else -shift),
            0.05,
            0.95,
        )
    return signatures


def generate_classification_rasters(
    num_images: int,
    num_classes: int,
    bands: int,
    height: int,
    width: int,
    seed: int = 0,
    texture_signal: bool = True,
):
    """Class-separable multispectral images.

    Returns ``(images, labels)`` with images (N, bands, H, W) in
    [0, 1].  Class signal lives in per-band means (spectral) and in
    the spatial correlation length of the texture (GLCM-detectable).
    """
    rng = default_rng(seed, label="classification_rasters")
    signatures = class_spectral_signatures(num_classes, bands, rng)
    # Per-class texture correlation length (pixels).
    sigmas = np.linspace(0.5, 3.0, num_classes)

    labels = rng.integers(0, num_classes, size=num_images).astype(np.int64)
    images = np.empty((num_images, bands, height, width), dtype=np.float32)
    for n in range(num_images):
        k = labels[n]
        sigma = sigmas[k] if texture_signal else 1.5
        texture = _smooth_field(rng, (height, width), sigma)
        # Per-image signature jitter: within-class spectral variance
        # (illumination, season) that makes classes overlap.
        jitter = 0.075 * rng.standard_normal(bands)
        brightness = 0.06 * rng.standard_normal()
        for b in range(bands):
            band_texture = 0.7 * texture + 0.3 * _smooth_field(
                rng, (height, width), sigma
            )
            band = signatures[k, b] + jitter[b] + brightness + 0.12 * band_texture
            band += 0.05 * rng.standard_normal((height, width))
            images[n, b] = np.clip(band, 0.0, 1.0)
    return images, labels


def generate_segmentation_rasters(
    num_images: int,
    bands: int,
    height: int,
    width: int,
    seed: int = 0,
    cloud_fraction: float = 0.35,
):
    """Cloud-segmentation-style images.

    Returns ``(images, masks)``: images (N, bands, H, W) in [0, 1] and
    binary masks (N, H, W) marking bright correlated "cloud" blobs.
    """
    rng = default_rng(seed, label="segmentation_rasters")
    images = np.empty((num_images, bands, height, width), dtype=np.float32)
    masks = np.empty((num_images, height, width), dtype=np.int64)
    for n in range(num_images):
        landscape = 0.3 + 0.1 * _smooth_field(rng, (height, width), 2.0)
        blob_field = _smooth_field(rng, (height, width), max(3.0, height / 8))
        threshold = np.quantile(blob_field, 1.0 - cloud_fraction)
        mask = blob_field > threshold
        masks[n] = mask.astype(np.int64)
        softness = ndimage.gaussian_filter(mask.astype(np.float64), 0.5)
        for b in range(bands):
            band = landscape + 0.08 * _smooth_field(rng, (height, width), 1.5)
            band = band + softness * (0.5 + 0.04 * rng.standard_normal())
            band += 0.02 * rng.standard_normal((height, width))
            images[n, b] = np.clip(band, 0.0, 1.0)
    return images, masks
