"""Dataset catalog: the metadata behind the paper's Tables II & III."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DatasetInfo:
    """Catalog entry for one benchmark dataset."""

    name: str
    category: str  # "grid" | "raster"
    data_type: str
    grid_shape: tuple | None = None
    time_interval: str | None = None
    time_duration: str | None = None
    image_shape: tuple | None = None
    num_classes: int | None = None
    num_bands: int | None = None
    task: str | None = None


# Paper-reported metadata (Tables II and III); the synthetic
# generators honour grid shapes / band counts, with scaled-down
# defaults for timestep and image counts (overridable per dataset).
DATASET_REGISTRY: dict[str, DatasetInfo] = {
    "BikeNYC-DeepSTN": DatasetInfo(
        name="BikeNYC-DeepSTN",
        category="grid",
        data_type="Bike Flow",
        grid_shape=(21, 12),
        time_interval="1 Hour",
        time_duration="01/04/2014 - 30/09/2014",
    ),
    "TaxiNYC-STDN": DatasetInfo(
        name="TaxiNYC-STDN",
        category="grid",
        data_type="Taxi Flow and Volume",
        grid_shape=(10, 20),
        time_interval="30 Minutes",
        time_duration="01/01/2015 - 01/03/2015",
    ),
    "BikeNYC-STDN": DatasetInfo(
        name="BikeNYC-STDN",
        category="grid",
        data_type="Bike Flow and Volume",
        grid_shape=(10, 20),
        time_interval="30 Minutes",
        time_duration="01/07/2016 - 29/08/2016",
    ),
    "TaxiBJ21": DatasetInfo(
        name="TaxiBJ21",
        category="grid",
        data_type="Taxi Flow",
        grid_shape=(32, 32),
        time_interval="30 Minutes",
        time_duration="Nov 2012, Nov 2014, Nov 2015",
    ),
    "YellowTrip-NYC": DatasetInfo(
        name="YellowTrip-NYC",
        category="grid",
        data_type="Taxi Pickup and Dropoff",
        grid_shape=(12, 16),
        time_interval="30 Minutes",
        time_duration="01/10/2010 - 31/12/2010",
    ),
    "Temperature": DatasetInfo(
        name="Temperature",
        category="grid",
        data_type="Temperature",
        grid_shape=(32, 64),
        time_interval="1 Hour",
        time_duration="2018",
    ),
    "TotalPrecipitation": DatasetInfo(
        name="TotalPrecipitation",
        category="grid",
        data_type="Total Precipitation",
        grid_shape=(32, 64),
        time_interval="1 Hour",
        time_duration="2018",
    ),
    "TotalCloudCover": DatasetInfo(
        name="TotalCloudCover",
        category="grid",
        data_type="Total Cloud Cover",
        grid_shape=(32, 64),
        time_interval="1 Hour",
        time_duration="2018",
    ),
    "Geopotential": DatasetInfo(
        name="Geopotential",
        category="grid",
        data_type="Geopotential",
        grid_shape=(32, 64),
        time_interval="1 Hour",
        time_duration="2018",
    ),
    "SolarRadiation": DatasetInfo(
        name="SolarRadiation",
        category="grid",
        data_type="Total Incident Solar Radiation",
        grid_shape=(32, 64),
        time_interval="1 Hour",
        time_duration="2018",
    ),
    "SAT-6": DatasetInfo(
        name="SAT-6",
        category="raster",
        data_type="Multi-class Classification",
        image_shape=(28, 28),
        num_classes=6,
        num_bands=4,
        task="classification",
    ),
    "SAT-4": DatasetInfo(
        name="SAT-4",
        category="raster",
        data_type="Multi-class Classification",
        image_shape=(28, 28),
        num_classes=4,
        num_bands=4,
        task="classification",
    ),
    "EuroSAT": DatasetInfo(
        name="EuroSAT",
        category="raster",
        data_type="Multi-class Classification",
        image_shape=(64, 64),
        num_classes=10,
        num_bands=13,
        task="classification",
    ),
    "SlumDetection": DatasetInfo(
        name="SlumDetection",
        category="raster",
        data_type="Binary Classification",
        image_shape=(32, 32),
        num_classes=2,
        num_bands=4,
        task="classification",
    ),
    "38-Cloud": DatasetInfo(
        name="38-Cloud",
        category="raster",
        data_type="Segmentation",
        image_shape=(384, 384),
        num_classes=2,
        num_bands=4,
        task="segmentation",
    ),
}


def grid_catalog() -> list[DatasetInfo]:
    return [d for d in DATASET_REGISTRY.values() if d.category == "grid"]


def raster_catalog() -> list[DatasetInfo]:
    return [d for d in DATASET_REGISTRY.values() if d.category == "raster"]
