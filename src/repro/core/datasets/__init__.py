"""GeoTorchAI benchmark datasets (grid spatiotemporal + raster)."""

from repro.core.datasets import grid, raster
from repro.core.datasets.registry import DATASET_REGISTRY, DatasetInfo

__all__ = ["grid", "raster", "DATASET_REGISTRY", "DatasetInfo"]
