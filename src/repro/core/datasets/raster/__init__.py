"""Raster imagery benchmark datasets."""

from repro.core.datasets.raster.classification import (
    EuroSAT,
    SAT4,
    SAT6,
    SlumDetection,
)
from repro.core.datasets.raster.segmentation import Cloud38
from repro.core.datasets.raster.custom import CustomRasterDataset

__all__ = ["EuroSAT", "SAT4", "SAT6", "SlumDetection", "Cloud38", "CustomRasterDataset"]
