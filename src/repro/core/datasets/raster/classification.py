"""Raster classification datasets (paper Table III).

Band counts, class counts, and image shapes match the paper;
``num_images`` is a scaled-down default.  The DeepSAT-V2 path uses
``include_additional_features=True`` to get handcrafted texture +
spectral features alongside each image (Listing 1).
"""

from __future__ import annotations

from repro.core.datasets.raster.file_backed import FileBackedRasterDataset
from repro.core.datasets.synth import generate_classification_rasters


class _ClassificationDataset(FileBackedRasterDataset):
    IMAGE_SHAPE = (28, 28)
    NUM_CLASSES = 4
    NUM_BANDS = 4
    SEED = 0

    def __init__(
        self,
        root: str,
        num_images: int = 400,
        image_shape: tuple | None = None,
        bands=None,
        transform=None,
        include_additional_features: bool = False,
        download: bool = True,
    ):
        height, width = image_shape or self.IMAGE_SHAPE
        super().__init__(
            root,
            generator=generate_classification_rasters,
            generator_config={
                "num_images": num_images,
                "num_classes": self.NUM_CLASSES,
                "bands": self.NUM_BANDS,
                "height": height,
                "width": width,
                "seed": self.SEED,
            },
            bands=bands,
            transform=transform,
            include_additional_features=include_additional_features,
            download=download,
        )

    @property
    def num_classes(self) -> int:
        return self.NUM_CLASSES


class EuroSAT(_ClassificationDataset):
    """EuroSAT [3]: 10-class land-use classification, 13 Sentinel-2
    bands, 64x64 images (scaled default 32x32 to fit one core; pass
    ``image_shape=(64, 64)`` for the paper-faithful shape)."""

    DATASET_NAME = "eurosat"
    IMAGE_SHAPE = (32, 32)
    NUM_CLASSES = 10
    NUM_BANDS = 13
    SEED = 301


class SAT4(_ClassificationDataset):
    """SAT-4 [13]: 4-class airborne classification, 4 bands, 28x28."""

    DATASET_NAME = "sat4"
    IMAGE_SHAPE = (28, 28)
    NUM_CLASSES = 4
    NUM_BANDS = 4
    SEED = 302


class SAT6(_ClassificationDataset):
    """SAT-6 [13]: 6-class airborne classification, 4 bands, 28x28."""

    DATASET_NAME = "sat6"
    IMAGE_SHAPE = (28, 28)
    NUM_CLASSES = 6
    NUM_BANDS = 4
    SEED = 303


class SlumDetection(_ClassificationDataset):
    """SlumDetection [45]: binary informal-settlement detection,
    4 bands, 32x32."""

    DATASET_NAME = "slum_detection"
    IMAGE_SHAPE = (32, 32)
    NUM_CLASSES = 2
    NUM_BANDS = 4
    SEED = 304
