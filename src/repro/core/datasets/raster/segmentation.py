"""Raster segmentation datasets."""

from __future__ import annotations

from repro.core.datasets.raster.file_backed import FileBackedRasterDataset
from repro.core.datasets.synth import generate_segmentation_rasters


class Cloud38(FileBackedRasterDataset):
    """38-Cloud [4]: binary cloud segmentation of Landsat-8 scenes,
    4 bands.  Paper tiles are 384x384; the scaled default is 48x48
    (pass ``image_shape=(384, 384)`` for the paper-faithful shape —
    UNet's two pool/unpool stages require dims divisible by 4).

    Labels are (H, W) binary masks.
    """

    DATASET_NAME = "cloud38"
    NUM_BANDS = 4
    NUM_CLASSES = 2
    SEED = 305

    def __init__(
        self,
        root: str,
        num_images: int = 80,
        image_shape: tuple = (48, 48),
        bands=None,
        transform=None,
        download: bool = True,
    ):
        height, width = image_shape
        super().__init__(
            root,
            generator=generate_segmentation_rasters,
            generator_config={
                "num_images": num_images,
                "bands": self.NUM_BANDS,
                "height": height,
                "width": width,
                "seed": self.SEED,
            },
            bands=bands,
            transform=transform,
            include_additional_features=False,
            download=download,
        )

    @property
    def num_classes(self) -> int:
        return self.NUM_CLASSES
