"""Custom raster datasets (paper Section III-A1).

Wraps user-provided imagery — in-memory arrays or an on-disk ``.rtif``
tile folder — with the same band-selection / feature-extraction /
transform machinery as the benchmark datasets.
"""

from __future__ import annotations

import numpy as np

from repro.core.datasets.base import RasterDataset


class CustomRasterDataset(RasterDataset):
    """A raster dataset over user-provided (N, C, H, W) images."""

    @classmethod
    def from_folder(
        cls,
        session,
        folder: str,
        labels,
        bands=None,
        transform=None,
        include_additional_features: bool = False,
    ) -> "CustomRasterDataset":
        """Bulk-load a folder of ``.rtif`` tiles (sorted by name) into
        a dataset; ``labels`` must align with that order."""
        from repro.spatial.raster_io import load_raster_folder

        df = load_raster_folder(session, folder)
        columns = df.to_columns()
        order = np.argsort(columns["name"])
        images = np.stack([columns["tile"][i].data for i in order])
        return cls(
            images,
            np.asarray(labels),
            bands=bands,
            transform=transform,
            include_additional_features=include_additional_features,
        )
