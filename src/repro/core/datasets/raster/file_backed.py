"""File-backed raster dataset machinery (same download-then-load
pattern as the grid side)."""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.datasets.base import RasterDataset


class FileBackedRasterDataset(RasterDataset):
    """Named raster dataset stored under ``root/<DATASET_NAME>/data.npz``."""

    DATASET_NAME = "unnamed"

    def __init__(
        self,
        root: str,
        generator,
        generator_config: dict,
        bands=None,
        transform=None,
        include_additional_features: bool = False,
        download: bool = True,
    ):
        images, labels = self._load_or_generate(
            root, generator, generator_config, download
        )
        super().__init__(
            images,
            labels,
            bands=bands,
            transform=transform,
            include_additional_features=include_additional_features,
        )
        self.root = root

    @classmethod
    def _dataset_dir(cls, root: str) -> str:
        return os.path.join(root, cls.DATASET_NAME)

    def _load_or_generate(self, root, generator, config, download):
        data_path = os.path.join(self._dataset_dir(root), "data.npz")
        config_path = os.path.join(self._dataset_dir(root), "config.json")
        if os.path.exists(data_path):
            fresh = True
            if os.path.exists(config_path):
                with open(config_path) as handle:
                    fresh = json.load(handle) == config
            if fresh:
                with np.load(data_path) as archive:
                    return archive["images"], archive["labels"]
        if not download:
            raise FileNotFoundError(
                f"{self.DATASET_NAME} not found under {root} and "
                f"download=False"
            )
        images, labels = generator(**config)
        os.makedirs(self._dataset_dir(root), exist_ok=True)
        np.savez(data_path.removesuffix(".npz"), images=images, labels=labels)
        with open(config_path, "w") as handle:
            json.dump(config, handle)
        return images, labels
