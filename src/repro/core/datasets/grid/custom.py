"""Custom grid datasets (paper Section III-A1).

"GeoTorchAI datasets module provides classes that allow defining any
custom datasets instead of relying only on ready-to-use benchmark
datasets" — these load tensors produced offline (e.g. by the
preprocessing module's ``write_st_grid_array``) or passed in memory.
"""

from __future__ import annotations

import numpy as np

from repro.core.datasets.base import GridDataset
from repro.core.preprocessing.grid.st_manager import STManager


class CustomGridDataset(GridDataset):
    """A grid dataset over a user-provided (T, H, W, C) tensor."""

    def __init__(self, tensor, **kwargs):
        super().__init__(np.asarray(tensor, dtype=np.float32), **kwargs)

    @classmethod
    def from_file(cls, path: str, **kwargs) -> "CustomGridDataset":
        """Load a tensor written by
        :meth:`STManager.write_st_grid_array`."""
        return cls(STManager.read_st_grid_array(path), **kwargs)

    @classmethod
    def from_st_dataframe(
        cls,
        st_df,
        partitions_x: int,
        partitions_y: int,
        num_steps: int | None = None,
        value_columns=None,
        **kwargs,
    ) -> "CustomGridDataset":
        """Materialize an ``STManager``-aggregated DataFrame straight
        into a trainable dataset."""
        tensor = STManager.get_st_grid_array(
            st_df,
            partitions_x,
            partitions_y,
            num_steps=num_steps,
            value_columns=value_columns,
        )
        return cls(tensor, **kwargs)
