"""Traffic / flow prediction datasets (paper Table II).

Grid shapes and interval lengths match the paper; the number of
timesteps is a scaled-down default (overridable) so experiments fit a
single CPU core.  Data comes from the deterministic traffic generator
(see :mod:`repro.core.datasets.synth`): daily + weekly periodicity
dominating a smooth AR component, like real urban flow.
"""

from __future__ import annotations

from repro.core.datasets.grid.file_backed import FileBackedGridDataset
from repro.core.datasets.synth import generate_traffic_tensor


class _TrafficDataset(FileBackedGridDataset):
    GRID_SHAPE = (8, 8)
    CHANNELS = 2
    STEPS_PER_DAY = 24
    SEED = 0

    def __init__(
        self,
        root: str,
        num_steps: int = 1344,  # 8 weeks at hourly resolution
        grid_shape: tuple | None = None,
        lead_time: int = 1,
        normalize: bool = True,
        transform=None,
        download: bool = True,
    ):
        height, width = grid_shape or self.GRID_SHAPE
        super().__init__(
            root,
            generator=generate_traffic_tensor,
            generator_config={
                "num_steps": num_steps,
                "height": height,
                "width": width,
                "channels": self.CHANNELS,
                "steps_per_day": self.STEPS_PER_DAY,
                "seed": self.SEED,
            },
            lead_time=lead_time,
            steps_per_period=self.STEPS_PER_DAY,
            steps_per_trend=self.STEPS_PER_DAY * 7,
            normalize=normalize,
            transform=transform,
            download=download,
        )


class BikeNYCDeepSTN(_TrafficDataset):
    """Bike flow over a 21x12 hourly grid (BikeNYC-DeepSTN [27])."""

    DATASET_NAME = "bike_nyc_deepstn"
    GRID_SHAPE = (21, 12)
    CHANNELS = 2  # inflow, outflow
    STEPS_PER_DAY = 24
    SEED = 101


class TaxiNYCSTDN(_TrafficDataset):
    """Taxi flow and volume over a 10x20 half-hourly grid
    (TaxiNYC-STDN [1]): 4 channels = in/out flow + start/end volume."""

    DATASET_NAME = "taxi_nyc_stdn"
    GRID_SHAPE = (10, 20)
    CHANNELS = 4
    STEPS_PER_DAY = 48
    SEED = 102


class BikeNYCSTDN(_TrafficDataset):
    """Bike flow and volume over a 10x20 half-hourly grid
    (BikeNYC-STDN [1]): 4 channels = in/out flow + start/end volume."""

    DATASET_NAME = "bike_nyc_stdn"
    GRID_SHAPE = (10, 20)
    CHANNELS = 4
    STEPS_PER_DAY = 48
    SEED = 103


class TaxiBJ21(_TrafficDataset):
    """Taxi flow over a 32x32 half-hourly grid (TaxiBJ21 [44])."""

    DATASET_NAME = "taxibj21"
    GRID_SHAPE = (32, 32)
    CHANNELS = 2
    STEPS_PER_DAY = 48
    SEED = 104


class YellowTripNYC(_TrafficDataset):
    """Taxi pickup/dropoff counts over a 12x16 half-hourly grid —
    the dataset the paper releases, built with the preprocessing
    module.  :meth:`from_st_tensor` constructs it directly from a
    tensor produced by ``STManager`` (the end-to-end path)."""

    DATASET_NAME = "yellowtrip_nyc"
    GRID_SHAPE = (16, 12)  # (H, W) = (partitions_y, partitions_x)
    CHANNELS = 2  # pickups, dropoffs
    STEPS_PER_DAY = 48
    SEED = 105

    @classmethod
    def from_st_tensor(cls, tensor, normalize: bool = True, transform=None):
        """Wrap a (T, H, W, C) tensor prepared by the preprocessing
        module as a YellowTrip-NYC dataset, skipping the file cache."""
        from repro.core.datasets.base import GridDataset

        dataset = GridDataset(
            tensor,
            steps_per_period=cls.STEPS_PER_DAY,
            steps_per_trend=cls.STEPS_PER_DAY * 7,
            normalize=normalize,
            transform=transform,
        )
        return dataset
