"""WeatherBench-style forecasting datasets (paper Section V-A2).

The paper ships five hourly 2018 reanalysis variables on a 32x64
(5.625 deg x 2.8125 deg) grid.  Grid shape defaults to a scaled 16x32
(overridable up to the paper's 32x64); fields come from the weather
generator: advecting, strongly autocorrelated smooth fields with a
mild diurnal cycle.
"""

from __future__ import annotations

from repro.core.datasets.grid.file_backed import FileBackedGridDataset
from repro.core.datasets.synth import generate_weather_tensor


class _WeatherDataset(FileBackedGridDataset):
    SEED = 0

    def __init__(
        self,
        root: str,
        num_steps: int = 1344,  # 8 weeks, hourly
        grid_shape: tuple = (16, 32),
        lead_time: int = 1,
        normalize: bool = True,
        transform=None,
        download: bool = True,
    ):
        height, width = grid_shape
        super().__init__(
            root,
            generator=generate_weather_tensor,
            generator_config={
                "num_steps": num_steps,
                "height": height,
                "width": width,
                "channels": 1,
                "steps_per_day": 24,
                "seed": self.SEED,
            },
            lead_time=lead_time,
            steps_per_period=24,
            steps_per_trend=24 * 7,
            normalize=normalize,
            transform=transform,
            download=download,
        )


class Temperature(_WeatherDataset):
    """2m temperature."""

    DATASET_NAME = "weather_temperature"
    SEED = 201


class TotalPrecipitation(_WeatherDataset):
    """Total precipitation."""

    DATASET_NAME = "weather_precipitation"
    SEED = 202


class TotalCloudCover(_WeatherDataset):
    """Total cloud cover."""

    DATASET_NAME = "weather_cloud_cover"
    SEED = 203


class Geopotential(_WeatherDataset):
    """Geopotential at 500 hPa."""

    DATASET_NAME = "weather_geopotential"
    SEED = 204


class SolarRadiation(_WeatherDataset):
    """Total incident solar radiation."""

    DATASET_NAME = "weather_solar_radiation"
    SEED = 205
