"""File-backed grid dataset: the download-then-load pattern.

Real GeoTorchAI datasets download an archive on first use and then
load from ``root``.  Here "download" means running the deterministic
synthetic generator once and caching the tensor under ``root``;
subsequent constructions load the cached file, so the on-disk
layout and load path match the original design.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.datasets.base import GridDataset


class FileBackedGridDataset(GridDataset):
    """Common machinery for named grid datasets stored under
    ``root/<DATASET_NAME>/data.npz``."""

    DATASET_NAME = "unnamed"

    def __init__(
        self,
        root: str,
        generator,
        generator_config: dict,
        lead_time: int = 1,
        steps_per_period: int = 24,
        steps_per_trend: int = 24 * 7,
        normalize: bool = True,
        transform=None,
        download: bool = True,
    ):
        tensor = self._load_or_generate(
            root, generator, generator_config, download
        )
        super().__init__(
            tensor,
            lead_time=lead_time,
            steps_per_period=steps_per_period,
            steps_per_trend=steps_per_trend,
            normalize=normalize,
            transform=transform,
        )
        self.root = root

    @classmethod
    def _dataset_dir(cls, root: str) -> str:
        return os.path.join(root, cls.DATASET_NAME)

    @classmethod
    def _data_path(cls, root: str) -> str:
        return os.path.join(cls._dataset_dir(root), "data.npz")

    @classmethod
    def _config_path(cls, root: str) -> str:
        return os.path.join(cls._dataset_dir(root), "config.json")

    def _load_or_generate(self, root, generator, config, download) -> np.ndarray:
        data_path = self._data_path(root)
        config_path = self._config_path(root)
        if os.path.exists(data_path):
            if os.path.exists(config_path):
                with open(config_path) as handle:
                    cached = json.load(handle)
                if cached == _jsonable(config):
                    with np.load(data_path) as archive:
                        return archive["st_tensor"]
            else:
                with np.load(data_path) as archive:
                    return archive["st_tensor"]
        if not download:
            raise FileNotFoundError(
                f"{self.DATASET_NAME} not found under {root} and "
                f"download=False"
            )
        tensor = generator(**config)
        os.makedirs(self._dataset_dir(root), exist_ok=True)
        np.savez(data_path.removesuffix(".npz"), st_tensor=tensor)
        with open(config_path, "w") as handle:
            json.dump(_jsonable(config), handle)
        return tensor


def _jsonable(config: dict) -> dict:
    return {k: (int(v) if isinstance(v, np.integer) else v) for k, v in config.items()}
