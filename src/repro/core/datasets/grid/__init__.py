"""Grid-based spatiotemporal benchmark datasets."""

from repro.core.datasets.grid.traffic import (
    BikeNYCDeepSTN,
    TaxiNYCSTDN,
    BikeNYCSTDN,
    TaxiBJ21,
    YellowTripNYC,
)
from repro.core.datasets.grid.custom import CustomGridDataset
from repro.core.datasets.grid.weather import (
    Temperature,
    TotalPrecipitation,
    TotalCloudCover,
    Geopotential,
    SolarRadiation,
)

__all__ = [
    "CustomGridDataset",
    "BikeNYCDeepSTN",
    "TaxiNYCSTDN",
    "BikeNYCSTDN",
    "TaxiBJ21",
    "YellowTripNYC",
    "Temperature",
    "TotalPrecipitation",
    "TotalCloudCover",
    "Geopotential",
    "SolarRadiation",
]
