"""Conversion specs: how rows of a preprocessed DataFrame map to
(sample, label) arrays for each application domain."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClassificationSpec:
    """Raster classification rows: a tile column and an integer label
    column, optionally plus a handcrafted-feature column (DeepSAT-V2
    style)."""

    tile_column: str = "tile"
    label_column: str = "label"
    feature_column: str | None = None


@dataclass(frozen=True)
class SegmentationSpec:
    """Raster segmentation rows: a tile column and a mask column."""

    tile_column: str = "tile"
    mask_column: str = "mask"


@dataclass(frozen=True)
class SpatiotemporalSpec:
    """Aggregated spatiotemporal rows (``STManager`` output): sparse
    (time_step, cell_id, value...) records to be scattered into dense
    (C, H, W) frames, then paired as (frame_t, frame_{t+lead})."""

    partitions_x: int
    partitions_y: int
    value_columns: tuple = ("count",)
    lead_time: int = 1
    time_column: str = "time_step"
    cell_column: str = "cell_id"
