"""DFtoTorch Converter: preprocessed DataFrames -> training batches.

The paper's Section III-C module, in two stages (Figure 7):

- :class:`DFFormatter` — a *distributed* map that turns each DataFrame
  row into the array layout the eventual tensor needs, without
  collecting the DataFrame anywhere;
- :class:`RowTransformer` — streams the formatted partitions and emits
  fixed-size batches of :class:`~repro.tensor.Tensor`, applying
  user transformations on the way (Petastorm's role).

:class:`DFToTorchConverter` wires the two together behind one call.
"""

from repro.core.converter.specs import (
    ClassificationSpec,
    SegmentationSpec,
    SpatiotemporalSpec,
)
from repro.core.converter.df_formatter import DFFormatter
from repro.core.converter.row_transformer import RowTransformer
from repro.core.converter.converter import DFToTorchConverter

__all__ = [
    "ClassificationSpec",
    "SegmentationSpec",
    "SpatiotemporalSpec",
    "DFFormatter",
    "RowTransformer",
    "DFToTorchConverter",
]
