"""One-call DFtoTorch conversion."""

from __future__ import annotations

from repro.core.converter.df_formatter import DFFormatter
from repro.core.converter.row_transformer import RowTransformer
from repro.engine.dataframe import DataFrame


class DFToTorchConverter:
    """End-to-end DataFrame -> batched tensors.

    >>> converter = DFToTorchConverter(spec)          # doctest: +SKIP
    >>> for x, y in converter.convert(df, batch_size=32):
    ...     loss = criterion(model(x), y)
    """

    def __init__(self, spec):
        self.spec = spec
        self._formatter = DFFormatter(spec)

    def format(self, df: DataFrame) -> DataFrame:
        """Run only the (lazy) DF Formatter stage."""
        return self._formatter.format(df)

    def convert(
        self,
        df: DataFrame,
        batch_size: int = 32,
        transform=None,
        shuffle_buffer: int = 0,
        rng=None,
    ) -> RowTransformer:
        """Return a re-iterable stream of training batches.

        ``shuffle_buffer > 0`` enables approximate streaming shuffle
        (not meaningful for the spatiotemporal spec, whose frames must
        stay in temporal order).
        """
        formatted = self._formatter.format(df)
        return RowTransformer(
            formatted,
            batch_size=batch_size,
            transform=transform,
            spec=self.spec,
            shuffle_buffer=shuffle_buffer,
            rng=rng,
        )
