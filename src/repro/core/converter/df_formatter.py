"""DF Formatter: the distributed row -> array-layout mapping stage."""

from __future__ import annotations

import numpy as np

from repro.core.converter.specs import (
    ClassificationSpec,
    SegmentationSpec,
    SpatiotemporalSpec,
)
from repro.engine.dataframe import DataFrame
from repro.engine.partition import Partition
from repro.spatial.raster import RasterTile


class DFFormatter:
    """Maps each row of a preprocessed DataFrame into the array shape
    of the eventual tensor — executed per-partition on the engine, so
    no centralized aggregation happens (Section III-C)."""

    def __init__(self, spec):
        self.spec = spec

    def format(self, df: DataFrame) -> DataFrame:
        """Return a DataFrame with ``__x`` (and ``__y``, ``__f``)
        object columns holding per-row arrays."""
        spec = self.spec
        if isinstance(spec, ClassificationSpec):
            return self._format_classification(df, spec)
        if isinstance(spec, SegmentationSpec):
            return self._format_segmentation(df, spec)
        if isinstance(spec, SpatiotemporalSpec):
            return self._format_spatiotemporal(df, spec)
        raise TypeError(f"unknown spec {type(spec).__name__}")

    @staticmethod
    def _tile_array(value) -> np.ndarray:
        if isinstance(value, RasterTile):
            return value.data
        return np.asarray(value, dtype=np.float32)

    def _format_classification(self, df, spec) -> DataFrame:
        def fn(part: Partition) -> Partition:
            tiles = part.columns[spec.tile_column]
            xs = np.empty(len(tiles), dtype=object)
            for i in range(len(tiles)):
                xs[i] = self._tile_array(tiles[i])
            columns = {
                "__x": xs,
                "__y": np.asarray(
                    part.columns[spec.label_column], dtype=np.int64
                ),
            }
            if spec.feature_column is not None:
                feats = part.columns[spec.feature_column]
                fs = np.empty(len(feats), dtype=object)
                for i in range(len(feats)):
                    fs[i] = np.asarray(feats[i], dtype=np.float32)
                columns["__f"] = fs
            return Partition(columns)

        return df.map_partitions(fn, label="df_formatter[classification]")

    def _format_segmentation(self, df, spec) -> DataFrame:
        def fn(part: Partition) -> Partition:
            tiles = part.columns[spec.tile_column]
            masks = part.columns[spec.mask_column]
            xs = np.empty(len(tiles), dtype=object)
            ys = np.empty(len(tiles), dtype=object)
            for i in range(len(tiles)):
                xs[i] = self._tile_array(tiles[i])
                ys[i] = np.asarray(masks[i], dtype=np.int64)
            return Partition({"__x": xs, "__y": ys})

        return df.map_partitions(fn, label="df_formatter[segmentation]")

    def _format_spatiotemporal(self, df, spec) -> DataFrame:
        """Scatter sparse aggregate rows into dense per-timestep
        frames.  Rows are first globally ordered by time so frames
        stream out in temporal order; per-frame assembly happens
        partition-locally."""
        h, w = spec.partitions_y, spec.partitions_x
        channels = len(spec.value_columns)

        def fn(part: Partition) -> Partition:
            if part.num_rows == 0:
                return Partition(
                    {"__t": np.empty(0, dtype=np.int64), "__x": np.empty(0, dtype=object)}
                )
            steps = np.asarray(part.columns[spec.time_column], dtype=np.int64)
            cells = np.asarray(part.columns[spec.cell_column], dtype=np.int64)
            uniques = np.unique(steps)
            frames = np.empty(len(uniques), dtype=object)
            for idx, t in enumerate(uniques):
                frame = np.zeros((channels, h, w), dtype=np.float32)
                sel = steps == t
                ys, xs = cells[sel] // w, cells[sel] % w
                for c, name in enumerate(spec.value_columns):
                    frame[c, ys, xs] = np.asarray(
                        part.columns[name], dtype=np.float32
                    )[sel]
                frames[idx] = frame
            return Partition({"__t": uniques, "__x": frames})

        # The global order_by makes every timestep land in one place.
        ordered = df.order_by(spec.time_column)
        return ordered.map_partitions(fn, label="df_formatter[spatiotemporal]")
