"""Row Transformer: formatted partitions -> batched tensors."""

from __future__ import annotations

import numpy as np

from repro.core.converter.specs import SpatiotemporalSpec
from repro.engine.dataframe import DataFrame
from repro.tensor import Tensor


class RowTransformer:
    """Streams a formatted DataFrame as fixed-size training batches.

    Iterating yields tuples of :class:`Tensor`; per-sample
    ``transform`` runs on the x array before batching (the
    "transformation spec" role Petastorm plays in the paper).  At no
    point is more than one partition plus one pending batch (plus the
    optional shuffle buffer) resident.

    ``shuffle_buffer`` enables Petastorm-style approximate shuffling:
    samples pass through a fixed-size reservoir and leave it in random
    order, decorrelating batches from partition order without a
    global shuffle.
    """

    def __init__(
        self,
        formatted_df: DataFrame,
        batch_size: int = 32,
        transform=None,
        spec=None,
        shuffle_buffer: int = 0,
        rng=None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if shuffle_buffer < 0:
            raise ValueError("shuffle_buffer must be >= 0")
        self.df = formatted_df
        self.batch_size = batch_size
        self.transform = transform
        self.spec = spec
        self.shuffle_buffer = shuffle_buffer
        from repro.utils.rng import default_rng

        self._rng = default_rng(rng, label="row_transformer")

    def __iter__(self):
        if isinstance(self.spec, SpatiotemporalSpec):
            source = self._iter_spatiotemporal()
        else:
            source = self._iter_samples()
        from repro import obs

        if not obs.enabled():
            yield from source
            return
        batches = obs.registry.counter("converter.batches")
        samples = obs.registry.counter("converter.samples")
        for batch in source:
            batches.inc()
            samples.inc(len(batch[0].data))
            yield batch

    def _raw_samples(self):
        for part in self.df.iter_partitions():
            xs = part.columns["__x"]
            ys = part.columns["__y"]
            fs = part.columns.get("__f")
            for i in range(part.num_rows):
                x = xs[i]
                if self.transform is not None:
                    x = self.transform(x)
                yield (x, ys[i]) if fs is None else (x, ys[i], fs[i])

    def _shuffled_samples(self):
        from repro import obs

        occupancy = obs.registry.histogram("converter.shuffle_buffer_occupancy")
        buffer: list[tuple] = []
        for sample in self._raw_samples():
            buffer.append(sample)
            if len(buffer) > self.shuffle_buffer:
                # Observed at emission: how full the reservoir ran
                # (per-emit, but bounded by the sample count and
                # no-op when the obs layer is disabled).
                occupancy.observe(len(buffer))
                index = int(self._rng.integers(len(buffer)))
                buffer[index], buffer[-1] = buffer[-1], buffer[index]
                yield buffer.pop()
        occupancy.observe(len(buffer))
        self._rng.shuffle(buffer)
        yield from buffer

    def _iter_samples(self):
        source = (
            self._shuffled_samples()
            if self.shuffle_buffer
            else self._raw_samples()
        )
        pending: list[tuple] = []
        for sample in source:
            pending.append(sample)
            if len(pending) == self.batch_size:
                yield self._collate(pending)
                pending = []
        if pending:
            yield self._collate(pending)

    def _iter_spatiotemporal(self):
        """Pair consecutive frames as (x_t, y_{t+lead}) across
        partition boundaries using a small carry buffer."""
        lead = self.spec.lead_time
        buffer: list[np.ndarray] = []
        pending: list[tuple] = []
        for part in self.df.iter_partitions():
            buffer.extend(part.columns["__x"])
            # Emit (frame_i, frame_{i+lead}) pairs; each x leaves the
            # buffer once emitted, so nothing repeats across partitions.
            while len(buffer) > lead:
                x = buffer.pop(0)
                y = buffer[lead - 1]
                if self.transform is not None:
                    x = self.transform(x)
                pending.append((x, y))
                if len(pending) == self.batch_size:
                    yield self._collate(pending)
                    pending = []
        if pending:
            yield self._collate(pending)

    @staticmethod
    def _collate(samples: list[tuple]) -> tuple:
        width = len(samples[0])
        return tuple(
            Tensor(np.stack([np.asarray(s[j]) for s in samples]))
            for j in range(width)
        )
