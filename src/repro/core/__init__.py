"""GeoTorchAI core: the paper's contribution.

Sub-packages mirror the paper's module structure:

- :mod:`repro.core.datasets` — ready-to-use benchmark datasets (grid
  spatiotemporal + raster imagery) with the basic / sequential /
  periodical representations;
- :mod:`repro.core.models` — grid models (Periodical CNN, ConvLSTM,
  ST-ResNet, DeepSTN+) and raster models (SatCNN, DeepSAT-V2, FCN,
  UNet, UNet++);
- :mod:`repro.core.transforms` — composable raster/grid transforms;
- :mod:`repro.core.preprocessing` — scalable preprocessing on the
  engine (``STManager``, ``SpacePartition``, ``RasterProcessing``,
  GLCM + spectral features);
- :mod:`repro.core.converter` — the DFtoTorch Converter;
- :mod:`repro.core.training` — Trainer, early stopping, metrics.
"""
