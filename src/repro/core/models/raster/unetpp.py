"""UNet++ (Zhou et al., 2018): nested U-Net with dense skip pathways.

A depth-2 nested grid of nodes X(i, j): X(i, j) for j > 0 decodes the
upsampled X(i+1, j-1) together with *all* same-level predecessors
X(i, 0..j-1).  Denser decoding is why UNet++ is both the most accurate
and the slowest segmentation model in Tables VI and VII.
"""

from __future__ import annotations

from repro import nn
from repro.nn import functional as F
from repro.tensor import concatenate

from repro.core.models.raster.unet import DoubleConv


class UNetPlusPlus(nn.Module):
    """Nested U-Net producing per-pixel class logits."""

    def __init__(
        self,
        in_channels: int,
        num_classes: int,
        base_filters: int = 12,
        rng=None,
    ):
        super().__init__()
        f = base_filters
        # Backbone column j=0
        self.x00 = DoubleConv(in_channels, f, rng=rng)
        self.x10 = DoubleConv(f, 2 * f, rng=rng)
        self.x20 = DoubleConv(2 * f, 4 * f, rng=rng)
        # Upsamplers
        self.up10 = nn.ConvTranspose2d(2 * f, f, 2, stride=2, rng=rng)
        self.up20 = nn.ConvTranspose2d(4 * f, 2 * f, 2, stride=2, rng=rng)
        self.up11 = nn.ConvTranspose2d(2 * f, f, 2, stride=2, rng=rng)
        # Nested decoder nodes
        self.x01 = DoubleConv(2 * f, f, rng=rng)  # [x00, up(x10)]
        self.x11 = DoubleConv(4 * f, 2 * f, rng=rng)  # [x10, up(x20)]
        self.x02 = DoubleConv(3 * f, f, rng=rng)  # [x00, x01, up(x11)]
        self.head = nn.Conv2d(f, num_classes, 1, rng=rng)

    def forward(self, x):
        if x.shape[2] % 4 or x.shape[3] % 4:
            raise ValueError(
                f"UNet++ pools twice; input {x.shape[2]}x{x.shape[3]} must "
                f"be divisible by 4"
            )
        x00 = self.x00(x)
        x10 = self.x10(F.max_pool2d(x00, 2))
        x20 = self.x20(F.max_pool2d(x10, 2))
        x01 = self.x01(concatenate([x00, self.up10(x10)], axis=1))
        x11 = self.x11(concatenate([x10, self.up20(x20)], axis=1))
        x02 = self.x02(concatenate([x00, x01, self.up11(x11)], axis=1))
        return self.head(x02)
