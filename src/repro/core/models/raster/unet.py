"""U-Net (Ronneberger et al., 2015): encoder-decoder with skip
connections.  Two pool/up stages (depth 2) by default, sized for the
scaled 38-Cloud tiles."""

from __future__ import annotations

from repro import nn
from repro.nn import functional as F
from repro.tensor import concatenate


class DoubleConv(nn.Module):
    """(conv-relu) x2, the U-Net building block."""

    def __init__(self, in_channels: int, out_channels: int, rng=None):
        super().__init__()
        self.block = nn.Sequential(
            nn.Conv2d(in_channels, out_channels, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(out_channels, out_channels, 3, padding=1, rng=rng),
            nn.ReLU(),
        )

    def forward(self, x):
        return self.block(x)


class UNet(nn.Module):
    """U-Net segmentation network producing per-pixel class logits."""

    def __init__(
        self,
        in_channels: int,
        num_classes: int,
        base_filters: int = 12,
        rng=None,
    ):
        super().__init__()
        f = base_filters
        self.enc0 = DoubleConv(in_channels, f, rng=rng)
        self.enc1 = DoubleConv(f, 2 * f, rng=rng)
        self.bottleneck = DoubleConv(2 * f, 4 * f, rng=rng)
        self.up1 = nn.ConvTranspose2d(4 * f, 2 * f, 2, stride=2, rng=rng)
        self.dec1 = DoubleConv(4 * f, 2 * f, rng=rng)
        self.up0 = nn.ConvTranspose2d(2 * f, f, 2, stride=2, rng=rng)
        self.dec0 = DoubleConv(2 * f, f, rng=rng)
        self.head = nn.Conv2d(f, num_classes, 1, rng=rng)

    def forward(self, x):
        if x.shape[2] % 4 or x.shape[3] % 4:
            raise ValueError(
                f"UNet pools twice; input {x.shape[2]}x{x.shape[3]} must be "
                f"divisible by 4"
            )
        s0 = self.enc0(x)
        s1 = self.enc1(F.max_pool2d(s0, 2))
        b = self.bottleneck(F.max_pool2d(s1, 2))
        d1 = self.dec1(concatenate([self.up1(b), s1], axis=1))
        d0 = self.dec0(concatenate([self.up0(d1), s0], axis=1))
        return self.head(d0)
