"""SatCNN (Zhong et al., 2017): an "agile" deep CNN for satellite
image classification — several conv-bn-relu stages with pooling, then
fully-connected classification.  The deeper of the two classifiers in
Table VI (and the slower one in Table VII)."""

from __future__ import annotations

from repro import nn
from repro.utils.validation import check_positive


class SatCNN(nn.Module):
    """Deep convolutional classifier over (N, C, H, W) raster images.

    Parameters mirror the paper's Listing 6: ``in_channels``,
    ``in_height``, ``in_width``, ``num_classes``.
    """

    def __init__(
        self,
        in_channels: int,
        in_height: int,
        in_width: int,
        num_classes: int,
        base_filters: int = 16,
        rng=None,
    ):
        super().__init__()
        check_positive(num_classes, "num_classes")
        if in_height % 4 or in_width % 4:
            raise ValueError(
                f"SatCNN pools twice; input ({in_height}, {in_width}) must "
                f"be divisible by 4"
            )
        f = base_filters
        self.features = nn.Sequential(
            nn.Conv2d(in_channels, f, 3, padding=1, rng=rng),
            nn.BatchNorm2d(f),
            nn.ReLU(),
            nn.Conv2d(f, f, 3, padding=1, rng=rng),
            nn.BatchNorm2d(f),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(f, 2 * f, 3, padding=1, rng=rng),
            nn.BatchNorm2d(2 * f),
            nn.ReLU(),
            nn.Conv2d(2 * f, 2 * f, 3, padding=1, rng=rng),
            nn.BatchNorm2d(2 * f),
            nn.ReLU(),
            nn.MaxPool2d(2),
        )
        flat = 2 * f * (in_height // 4) * (in_width // 4)
        self.classifier = nn.Sequential(
            nn.Linear(flat, 4 * f, rng=rng),
            nn.ReLU(),
            nn.Linear(4 * f, num_classes, rng=rng),
        )

    def forward(self, x):
        x = self.features(x)
        x = x.flatten(start_axis=1)
        return self.classifier(x)
