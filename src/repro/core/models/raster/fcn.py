"""Fully Convolutional Network for semantic segmentation
(Shelhamer, Long & Darrell, 2017) — the FCN-style baseline in
Table VI: a conv encoder, a 1x1 class head at low resolution, and a
learned transposed-conv upsampler back to input resolution."""

from __future__ import annotations

from repro import nn


class FCN(nn.Module):
    """Pixelwise classifier producing (N, num_classes, H, W) logits."""

    def __init__(
        self,
        in_channels: int,
        num_classes: int,
        base_filters: int = 16,
        rng=None,
    ):
        super().__init__()
        f = base_filters
        self.encoder = nn.Sequential(
            nn.Conv2d(in_channels, f, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(f, 2 * f, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(2 * f, 2 * f, 3, padding=1, rng=rng),
            nn.ReLU(),
        )
        self.score = nn.Conv2d(2 * f, num_classes, 1, rng=rng)
        self.upsample = nn.ConvTranspose2d(
            num_classes, num_classes, 4, stride=4, rng=rng
        )

    def forward(self, x):
        if x.shape[2] % 4 or x.shape[3] % 4:
            raise ValueError(
                f"FCN downsamples 4x; input {x.shape[2]}x{x.shape[3]} must "
                f"be divisible by 4"
            )
        features = self.encoder(x)
        return self.upsample(self.score(features))
