"""Raster imagery models (classification + segmentation)."""

from repro.core.models.raster.sat_cnn import SatCNN
from repro.core.models.raster.deepsat import DeepSat
from repro.core.models.raster.deepsat_v2 import DeepSatV2
from repro.core.models.raster.fcn import FCN
from repro.core.models.raster.unet import UNet
from repro.core.models.raster.unetpp import UNetPlusPlus

__all__ = ["SatCNN", "DeepSat", "DeepSatV2", "FCN", "UNet", "UNetPlusPlus"]
