"""DeepSAT-V2 (Liu et al., 2019): feature-augmented CNN.

A *shallower* CNN than SatCNN, compensated by fusing handcrafted
features (GLCM texture + spectral statistics) into the fully-connected
stage — the design whose parity with SatCNN Table VI demonstrates.
Forward takes ``(inputs, features)`` per the paper's Listing 6.
"""

from __future__ import annotations

from repro import nn
from repro.tensor import concatenate
from repro.utils.validation import check_non_negative, check_positive


class DeepSatV2(nn.Module):
    """Shallow CNN + handcrafted-feature fusion classifier."""

    def __init__(
        self,
        in_channels: int,
        in_height: int,
        in_width: int,
        num_classes: int,
        num_filtered_features: int = 0,
        base_filters: int = 16,
        rng=None,
    ):
        super().__init__()
        check_positive(num_classes, "num_classes")
        check_non_negative(num_filtered_features, "num_filtered_features")
        if in_height % 2 or in_width % 2:
            raise ValueError(
                f"DeepSatV2 pools once; input ({in_height}, {in_width}) "
                f"must be even"
            )
        f = base_filters
        self.features = nn.Sequential(
            nn.Conv2d(in_channels, f, 3, padding=1, rng=rng),
            nn.BatchNorm2d(f),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(f, f, 3, padding=1, rng=rng),
            nn.BatchNorm2d(f),
            nn.ReLU(),
        )
        self.num_filtered_features = num_filtered_features
        flat = f * (in_height // 2) * (in_width // 2)
        self.fuse = nn.Sequential(
            nn.Linear(flat + num_filtered_features, 4 * f, rng=rng),
            nn.ReLU(),
            nn.Dropout(0.25, rng=rng),
            nn.Linear(4 * f, num_classes, rng=rng),
        )

    def forward(self, inputs, features=None):
        x = self.features(inputs).flatten(start_axis=1)
        if self.num_filtered_features:
            if features is None:
                raise ValueError(
                    "model was built with num_filtered_features > 0 but no "
                    "feature vector was passed"
                )
            x = concatenate([x, features], axis=1)
        return self.fuse(x)
