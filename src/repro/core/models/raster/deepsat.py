"""DeepSAT (Basu et al., SIGSPATIAL 2015).

The original DeepSAT classifies satellite imagery from ~50 handcrafted,
normalized features through a deep belief network — no convolutions.
Reproduced as a deep fully-connected classifier over the feature
vector (the modern equivalent of the DBN's discriminative fine-tuning
stage).  Pair with ``RasterDataset(include_additional_features=True)``,
which extracts the GLCM texture + spectral statistics DeepSAT uses.
"""

from __future__ import annotations

from repro import nn
from repro.utils.validation import check_positive


class DeepSat(nn.Module):
    """Feature-vector classifier: (N, num_features) -> (N, classes)."""

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden_sizes=(64, 32),
        dropout: float = 0.1,
        rng=None,
    ):
        super().__init__()
        check_positive(num_features, "num_features")
        check_positive(num_classes, "num_classes")
        layers = []
        width = num_features
        for hidden in hidden_sizes:
            layers.append(nn.Linear(width, hidden, rng=rng))
            layers.append(nn.ReLU())
            if dropout:
                layers.append(nn.Dropout(dropout, rng=rng))
            width = hidden
        layers.append(nn.Linear(width, num_classes, rng=rng))
        self.classifier = nn.Sequential(*layers)
        self.num_features = num_features

    def forward(self, features):
        if features.shape[-1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features, got "
                f"{features.shape[-1]}"
            )
        return self.classifier(features)
