"""GeoTorchAI models: grid spatiotemporal + raster imagery."""

from repro.core.models import grid, raster

__all__ = ["grid", "raster"]
