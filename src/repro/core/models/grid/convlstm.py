"""The ConvLSTM forecasting model (Shi et al., NIPS 2015).

An encoder stack of ConvLSTM layers reads the history window; the
final hidden state is decoded by a 1x1 convolution into the predicted
frame(s).  Uses the *sequential* representation (Listing 3).
"""

from __future__ import annotations

from repro import nn
from repro.tensor import Tensor, stack


class ConvLSTMModel(nn.Module):
    """Sequence-to-frame(s) ConvLSTM.

    Input: (N, T, C, H, W) history.  Output: (N, C, H, W) when
    ``prediction_length == 1`` else (N, P, C, H, W).
    """

    def __init__(
        self,
        in_channels: int,
        hidden_channels=(16,),
        kernel_size: int = 3,
        prediction_length: int = 1,
        rng=None,
    ):
        super().__init__()
        if isinstance(hidden_channels, int):
            hidden_channels = (hidden_channels,)
        self.prediction_length = prediction_length
        self.encoder = nn.ConvLSTM(
            in_channels, list(hidden_channels), kernel_size, rng=rng
        )
        self.head = nn.Conv2d(
            hidden_channels[-1], in_channels * prediction_length, 1, rng=rng
        )
        self.in_channels = in_channels

    def forward(self, x: Tensor):
        hidden_seq = self.encoder(x)  # (N, T, hidden, H, W)
        last_hidden = hidden_seq[:, -1]
        out = self.head(last_hidden)  # (N, P*C, H, W)
        if self.prediction_length == 1:
            return out
        n, _, h, w = out.shape
        frames = [
            out[:, p * self.in_channels : (p + 1) * self.in_channels]
            for p in range(self.prediction_length)
        ]
        return stack(frames, axis=1)
