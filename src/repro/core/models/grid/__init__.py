"""Grid-based spatiotemporal prediction models."""

from repro.core.models.grid.periodical_cnn import PeriodicalCNN
from repro.core.models.grid.convlstm import ConvLSTMModel
from repro.core.models.grid.st_resnet import STResNet
from repro.core.models.grid.deepstn import DeepSTNPlus

__all__ = ["PeriodicalCNN", "ConvLSTMModel", "STResNet", "DeepSTNPlus"]
