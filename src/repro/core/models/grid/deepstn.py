"""DeepSTN+ (Lin et al., AAAI 2019).

Key ideas reproduced from the original architecture:

- **early fusion**: closeness / period / trend stacks are fused by a
  1x1 convolution *before* the deep trunk (vs ST-ResNet's late fusion);
- **ConvPlus blocks**: every block augments a local 3x3 convolution
  with a global pathway (pooled features re-broadcast over the grid),
  capturing the long-range dependence the paper credits for DeepSTN+'s
  wins;
- **semantic context (PoI) maps**: the original injects
  point-of-interest maps that give each cell a location-specific
  prior; lacking PoI data, the maps are *learned* spatial embeddings
  concatenated to the fused input;
- optional **external features** entering through an MLP.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import functional as F
from repro.nn.module import Parameter
from repro.tensor import Tensor, concatenate


class ConvPlus(nn.Module):
    """Local conv + global (pool -> fc -> broadcast) pathway."""

    def __init__(self, in_channels: int, out_channels: int, rng=None):
        super().__init__()
        self.local = nn.Conv2d(in_channels, out_channels, 3, padding=1, rng=rng)
        self.global_fc = nn.Linear(in_channels, out_channels, rng=rng)

    def forward(self, x):
        local = self.local(x)
        pooled = F.global_avg_pool2d(x)  # (N, C)
        glob = self.global_fc(pooled)  # (N, out)
        return local + glob.reshape(glob.shape[0], glob.shape[1], 1, 1)


class _ConvPlusResidual(nn.Module):
    """Pre-activation residual block of two ConvPlus layers."""

    def __init__(self, channels: int, rng=None):
        super().__init__()
        self.conv1 = ConvPlus(channels, channels, rng=rng)
        self.conv2 = ConvPlus(channels, channels, rng=rng)

    def forward(self, x):
        out = self.conv1(x.relu())
        out = self.conv2(out.relu())
        return x + out


class DeepSTNPlus(nn.Module):
    """Context-aware spatial-temporal network for crowd flow.

    Inputs follow the periodical representation; output is the next
    frame (N, nb_channels, H, W).
    """

    def __init__(
        self,
        len_closeness: int = 3,
        len_period: int = 4,
        len_trend: int = 4,
        nb_channels: int = 2,
        grid_height: int = 32,
        grid_width: int = 32,
        nb_filters: int = 32,
        nb_blocks: int = 2,
        context_channels: int = 4,
        external_dim: int | None = None,
        rng=None,
    ):
        super().__init__()
        self.nb_channels = nb_channels
        in_channels = (len_closeness + len_period + len_trend) * nb_channels
        # Learned PoI/semantic maps: per-cell context priors.
        self.context = Parameter(
            0.01
            * np.random.default_rng(0).standard_normal(
                (context_channels, grid_height, grid_width)
            ).astype(np.float32)
        )
        self.early_fusion = nn.Conv2d(
            in_channels + context_channels, nb_filters, 1, rng=rng
        )
        self.blocks = nn.ModuleList(
            [_ConvPlusResidual(nb_filters, rng=rng) for _ in range(nb_blocks)]
        )
        self.head = nn.Conv2d(nb_filters, nb_channels, 3, padding=1, rng=rng)
        # Per-cell affine output calibration (the role the PoI-weighted
        # output fusion plays in the original network).
        self.out_weight = Parameter(
            np.ones((nb_channels, grid_height, grid_width), dtype=np.float32)
        )
        self.out_bias = Parameter(
            np.zeros((nb_channels, grid_height, grid_width), dtype=np.float32)
        )
        self.external_dim = external_dim
        if external_dim:
            self.external = nn.Sequential(
                nn.Linear(external_dim, nb_filters, rng=rng),
                nn.ReLU(),
                nn.Linear(nb_filters, nb_filters, rng=rng),
            )

    def forward(self, x_closeness, x_period, x_trend, external=None):
        n = x_closeness.shape[0]
        ctx = self.context.reshape(1, *self.context.shape)
        ones = Tensor(np.ones((n, 1, 1, 1), dtype=np.float32))
        ctx = ctx * ones  # broadcast the context maps over the batch
        x = concatenate([x_closeness, x_period, x_trend, ctx], axis=1)
        x = self.early_fusion(x)
        if self.external_dim:
            if external is None:
                raise ValueError(
                    "model was built with external_dim but no external "
                    "features were passed"
                )
            ext = self.external(external)
            x = x + ext.reshape(ext.shape[0], ext.shape[1], 1, 1)
        for block in self.blocks:
            x = block(x)
        out = self.head(x.relu()).tanh()
        return out * self.out_weight + self.out_bias
