"""ST-ResNet (Zhang, Zheng & Qi, AAAI 2017).

Three identical residual-CNN branches process the closeness, period,
and trend stacks; branch outputs are fused with learned per-pixel
weight maps; optional external features enter through a small MLP.
Output passes through tanh (the original trains on [-1, 1]-scaled
data; here data is [0, 1] so a sigmoid-free linear head would also
work — tanh is kept and the trainer handles scaling).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn.module import Parameter
from repro.tensor import Tensor


class _ResidualUnit(nn.Module):
    """relu-conv-relu-conv with identity shortcut."""

    def __init__(self, channels: int, rng=None):
        super().__init__()
        self.conv1 = nn.Conv2d(channels, channels, 3, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(channels, channels, 3, padding=1, rng=rng)

    def forward(self, x):
        out = self.conv1(x.relu())
        out = self.conv2(out.relu())
        return x + out


class _Branch(nn.Module):
    """conv -> L residual units -> relu-conv."""

    def __init__(self, in_channels, nb_filters, out_channels, nb_residual, rng=None):
        super().__init__()
        self.head = nn.Conv2d(in_channels, nb_filters, 3, padding=1, rng=rng)
        self.residuals = nn.ModuleList(
            [_ResidualUnit(nb_filters, rng=rng) for _ in range(nb_residual)]
        )
        self.tail = nn.Conv2d(nb_filters, out_channels, 3, padding=1, rng=rng)

    def forward(self, x):
        x = self.head(x)
        for unit in self.residuals:
            x = unit(x)
        return self.tail(x.relu())


class STResNet(nn.Module):
    """Deep spatio-temporal residual network.

    Parameters
    ----------
    len_closeness, len_period, len_trend:
        Stack lengths of the periodical representation.
    nb_channels:
        Flow channels per frame (paper: 2 = in/out flow).
    grid_height, grid_width:
        Spatial size (needed for the fusion weight maps).
    external_dim:
        Size of the external feature vector, or None (Listing 5).
    """

    def __init__(
        self,
        len_closeness: int = 3,
        len_period: int = 4,
        len_trend: int = 4,
        nb_channels: int = 2,
        grid_height: int = 32,
        grid_width: int = 32,
        nb_residual_units: int = 2,
        nb_filters: int = 16,
        external_dim: int | None = None,
        rng=None,
    ):
        super().__init__()
        self.nb_channels = nb_channels
        make = lambda length: _Branch(
            length * nb_channels, nb_filters, nb_channels, nb_residual_units, rng=rng
        )
        self.closeness_branch = make(len_closeness)
        self.period_branch = make(len_period)
        self.trend_branch = make(len_trend)

        shape = (nb_channels, grid_height, grid_width)
        self.w_closeness = Parameter(np.ones(shape, dtype=np.float32))
        self.w_period = Parameter(np.full(shape, 0.5, dtype=np.float32))
        self.w_trend = Parameter(np.full(shape, 0.5, dtype=np.float32))

        self.external_dim = external_dim
        if external_dim:
            hidden = max(8, nb_channels * 4)
            self.external = nn.Sequential(
                nn.Linear(external_dim, hidden, rng=rng),
                nn.ReLU(),
                nn.Linear(hidden, nb_channels * grid_height * grid_width, rng=rng),
            )
        self._out_shape = shape

    def forward(self, x_closeness, x_period, x_trend, external=None):
        fused = (
            self.w_closeness * self.closeness_branch(x_closeness)
            + self.w_period * self.period_branch(x_period)
            + self.w_trend * self.trend_branch(x_trend)
        )
        if self.external_dim:
            if external is None:
                raise ValueError(
                    "model was built with external_dim but no external "
                    "features were passed"
                )
            ext = self.external(external)
            fused = fused + ext.reshape(-1, *self._out_shape)
        return fused.tanh()
