"""Periodical CNN: the paper's simplest periodical-representation
model — a shallow CNN over the concatenated closeness / period / trend
channel stacks, without residual learning or fusion weights.  Serves
as the weak baseline in Tables IV and V.
"""

from __future__ import annotations

from repro import nn
from repro.tensor import concatenate


class PeriodicalCNN(nn.Module):
    """A plain CNN over concatenated periodical features.

    Inputs follow the periodical representation (Listing 5): three
    (N, len*C, H, W) stacks.  Output is the next frame (N, C, H, W).
    """

    def __init__(
        self,
        len_closeness: int,
        len_period: int,
        len_trend: int,
        nb_channels: int,
        hidden_channels: int = 16,
        rng=None,
    ):
        super().__init__()
        self.nb_channels = nb_channels
        in_channels = (len_closeness + len_period + len_trend) * nb_channels
        self.body = nn.Sequential(
            nn.Conv2d(in_channels, hidden_channels, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(hidden_channels, nb_channels, 3, padding=1, rng=rng),
        )

    def forward(self, x_closeness, x_period, x_trend):
        x = concatenate([x_closeness, x_period, x_trend], axis=1)
        return self.body(x)
