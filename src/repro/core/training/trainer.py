"""The training loop.

Supports both update schedules the paper describes (Section III-A2):
*incremental* (weights step after every batch — the paper's default)
and *cumulative* (gradients accumulate across the epoch and step once).
Validation-driven early stopping mirrors Section V-C.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.core.training.early_stopping import EarlyStopping
from repro.tensor import no_grad


@dataclass
class TrainingResult:
    """What a fit() run produced."""

    train_losses: list = field(default_factory=list)
    val_losses: list = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False
    epoch_seconds: list = field(default_factory=list)

    @property
    def best_val_loss(self) -> float:
        return min(self.val_losses) if self.val_losses else float("nan")

    @property
    def mean_epoch_seconds(self) -> float:
        if not self.epoch_seconds:
            return float("nan")
        return sum(self.epoch_seconds) / len(self.epoch_seconds)


class Trainer:
    """Generic trainer over any model + adapter pair.

    Parameters
    ----------
    model, optimizer, loss_fn:
        The usual trio.
    batch_adapter:
        Maps a collated batch to ``(inputs_tuple, target)`` — see
        :mod:`repro.core.training.adapters`.
    training_mode:
        ``"incremental"`` (step per batch) or ``"cumulative"``
        (step per epoch).
    free_graph:
        When True (the default) ``loss.backward(free_graph=True)``
        releases every intermediate activation, gradient, and closure
        during the backward walk, bounding peak memory at roughly one
        live layer instead of the whole unrolled graph.  Set False to
        retain graphs (e.g. to inspect intermediate ``.grad`` after
        training, or to call backward twice on one loss).
    """

    def __init__(
        self,
        model,
        optimizer,
        loss_fn,
        batch_adapter,
        training_mode: str = "incremental",
        grad_clip: float | None = None,
        free_graph: bool = True,
    ):
        if training_mode not in ("incremental", "cumulative"):
            raise ValueError(
                f"training_mode must be 'incremental' or 'cumulative', "
                f"got {training_mode!r}"
            )
        if grad_clip is not None and grad_clip <= 0:
            raise ValueError(f"grad_clip must be positive, got {grad_clip}")
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.batch_adapter = batch_adapter
        self.training_mode = training_mode
        self.grad_clip = grad_clip
        self.free_graph = free_graph
        self._trace_session = None

    @property
    def trace_session(self):
        """The :class:`~repro.tensor.trace.TraceSession` driving traced
        steps, or None when no traced epoch has run yet.  Exposes
        ``stats()`` for tests and diagnostics."""
        return self._trace_session

    def _ensure_trace_session(self):
        if self._trace_session is None:
            from repro.tensor.trace import TraceSession

            self._trace_session = TraceSession(
                self.model, self.loss_fn, free_graph=self.free_graph
            )
        return self._trace_session

    def _global_grad_norm(self) -> float:
        """Global L2 norm over all parameter gradients."""
        import numpy as np

        total = 0.0
        for param in self.model.parameters():
            if param.grad is not None:
                total += float((param.grad.astype(np.float64) ** 2).sum())
        return total**0.5

    def _clip_gradients(self) -> None:
        """Scale all gradients so their global L2 norm is at most
        ``grad_clip`` — the standard guard against the divergence
        spikes saturating heads (tanh) provoke under Adam.

        The norm (computed anyway for clipping) is recorded into the
        ``trainer.grad_norm`` histogram; no extra passes are made when
        clipping is off."""
        from repro import obs

        norm = self._global_grad_norm()
        obs.registry.histogram("trainer.grad_norm").observe(norm)
        if norm > self.grad_clip:
            scale = self.grad_clip / norm
            for param in self.model.parameters():
                if param.grad is not None:
                    param.grad *= scale

    # ------------------------------------------------------------------
    def train_epoch(self, loader, profiler=None, trace: bool = False) -> float:
        """One pass over the loader; returns mean batch loss.

        ``profiler`` (an already-started
        :class:`~repro.obs.profiler.Profiler`) is stepped once per
        batch so its wait/warmup/active schedule advances with
        training steps.

        ``trace=True`` routes each batch through a
        :class:`~repro.tensor.trace.TraceSession`: the first step is
        recorded, matching steps replay the compiled program, and any
        guard condition falls back to the ordinary eager step with
        identical numbers (see :mod:`repro.tensor.trace`)."""
        self.model.train()
        session = self._ensure_trace_session() if trace else None
        total, batches = 0.0, 0
        if self.training_mode == "cumulative":
            self.optimizer.zero_grad()
        for batch in loader:
            inputs, target = self.batch_adapter(batch)
            if session is not None:
                if self.training_mode == "incremental":
                    self.optimizer.zero_grad()
                loss_value = session.step(inputs, target)
                if self.training_mode == "incremental":
                    if self.grad_clip is not None:
                        self._clip_gradients()
                    self.optimizer.step()
                total += loss_value
            else:
                output = self.model(*inputs)
                loss = self.loss_fn(output, target)
                if self.training_mode == "incremental":
                    self.optimizer.zero_grad()
                    loss.backward(free_graph=self.free_graph)
                    if self.grad_clip is not None:
                        self._clip_gradients()
                    self.optimizer.step()
                else:
                    loss.backward(free_graph=self.free_graph)
                total += loss.item()
            batches += 1
            if profiler is not None:
                profiler.step()
        if self.training_mode == "cumulative" and batches:
            if self.grad_clip is not None:
                self._clip_gradients()
            self.optimizer.step()
        return total / max(batches, 1)

    def evaluate(self, loader, metrics: dict | None = None) -> dict:
        """Mean loss (key ``"loss"``) plus any named metrics over a
        loader, without touching gradients."""
        self.model.eval()
        metrics = metrics or {}
        sums = {name: 0.0 for name in metrics}
        loss_total, batches = 0.0, 0
        with no_grad():
            for batch in loader:
                inputs, target = self.batch_adapter(batch)
                output = self.model(*inputs)
                loss_total += self.loss_fn(output, target).item()
                for name, fn in metrics.items():
                    sums[name] += fn(output, target)
                batches += 1
        result = {name: value / max(batches, 1) for name, value in sums.items()}
        result["loss"] = loss_total / max(batches, 1)
        return result

    def fit(
        self,
        train_loader,
        val_loader=None,
        epochs: int = 10,
        early_stopping: EarlyStopping | None = None,
        verbose: bool = False,
        profiler=None,
        trace: bool | None = None,
    ) -> TrainingResult:
        """Train for up to ``epochs``, optionally early-stopping on
        validation loss.

        ``profiler`` is a :class:`~repro.obs.profiler.Profiler`; if it
        has no model yet it is attached to ``self.model``, started for
        the duration of the fit (and stopped again, even on error),
        and stepped once per batch so a wait/warmup/active schedule
        profiles steady-state steps.  A profiler the caller already
        started (e.g. inside a ``with`` block) is left running.

        ``trace=True`` records the first training step and replays the
        compiled program on every later step with a matching input
        signature — see :mod:`repro.tensor.trace` for the guard
        conditions that fall back to eager.  ``trace=None`` (default)
        reads the ``REPRO_TRACE`` environment variable ("1" enables),
        so CI lanes can force the traced path without code changes."""
        from repro import obs

        if trace is None:
            trace = os.environ.get("REPRO_TRACE", "") not in ("", "0")
        owns_profiler = False
        if profiler is not None and not profiler._started:
            if profiler.model is None:
                profiler.model = self.model
            profiler.start()
            owns_profiler = True
        try:
            result = TrainingResult()
            for epoch in range(epochs):
                with obs.tracer.span("trainer.epoch") as span:
                    started = time.perf_counter()
                    train_loss = self.train_epoch(
                        train_loader, profiler=profiler, trace=trace
                    )
                    elapsed = time.perf_counter() - started
                span.set("epoch", epoch + 1)
                span.set("train_loss", train_loss)
                # Latency-class → windowed histogram (exact-rank tail
                # quantiles); loss stays a reservoir histogram (a
                # value-distribution metric).
                obs.registry.windowed_histogram(
                    "trainer.epoch_seconds"
                ).observe(elapsed)
                obs.registry.histogram("trainer.train_loss").observe(train_loss)
                result.epoch_seconds.append(elapsed)
                result.train_losses.append(train_loss)
                result.epochs_run = epoch + 1
                if val_loader is not None:
                    val_loss = self.evaluate(val_loader)["loss"]
                    result.val_losses.append(val_loss)
                    if verbose:
                        print(
                            f"epoch {epoch + 1}: train={train_loss:.5f} "
                            f"val={val_loss:.5f}"
                        )
                    if early_stopping is not None and early_stopping.step(val_loss):
                        result.stopped_early = True
                        break
                elif verbose:
                    print(f"epoch {epoch + 1}: train={train_loss:.5f}")
            return result
        finally:
            if owns_profiler:
                profiler.stop()
