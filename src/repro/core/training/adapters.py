"""Batch adapters: map DataLoader batches to (model inputs, target).

Each model family consumes a different representation, so the
:class:`~repro.core.training.trainer.Trainer` takes an adapter that
turns a collated batch into ``(inputs_tuple, target_tensor)``.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor


def periodical_batch(batch: dict):
    """Periodical dict batches -> ST-ResNet/DeepSTN+/PeriodicalCNN
    inputs."""
    inputs = (
        Tensor(batch["x_closeness"]),
        Tensor(batch["x_period"]),
        Tensor(batch["x_trend"]),
    )
    return inputs, Tensor(batch["y_data"])


def sequential_batch(batch: tuple):
    """(history, prediction) batches -> ConvLSTM inputs.  A length-1
    prediction window is squeezed to one frame."""
    x, y = batch
    y = np.asarray(y)
    if y.ndim == 5 and y.shape[1] == 1:
        y = y[:, 0]
    return (Tensor(x),), Tensor(y)


def basic_batch(batch: tuple):
    """(frame, future frame) batches for plain CNN forecasting."""
    x, y = batch
    return (Tensor(x),), Tensor(y)


def classification_batch(batch: tuple):
    """(image, label) batches."""
    x, y = batch
    return (Tensor(x),), Tensor(np.asarray(y, dtype=np.int64))


def classification_with_features_batch(batch: tuple):
    """(image, label, features) batches (DeepSAT-V2)."""
    x, y, features = batch
    return (
        (Tensor(x), Tensor(features)),
        Tensor(np.asarray(y, dtype=np.int64)),
    )


def segmentation_batch(batch: tuple):
    """(image, mask) batches."""
    x, y = batch
    return (Tensor(x),), Tensor(np.asarray(y, dtype=np.int64))
