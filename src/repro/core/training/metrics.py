"""Evaluation metrics (paper Section V-A3)."""

from __future__ import annotations

import numpy as np


def _arrays(pred, target):
    pred = pred.data if hasattr(pred, "data") else np.asarray(pred)
    target = target.data if hasattr(target, "data") else np.asarray(target)
    return np.asarray(pred), np.asarray(target)


def mae(pred, target) -> float:
    """Mean absolute error."""
    pred, target = _arrays(pred, target)
    return float(np.abs(pred - target).mean())


def rmse(pred, target) -> float:
    """Root mean squared error."""
    pred, target = _arrays(pred, target)
    return float(np.sqrt(((pred - target) ** 2).mean()))


def accuracy(logits, labels) -> float:
    """Classification accuracy from (N, K) logits and (N,) labels."""
    logits, labels = _arrays(logits, labels)
    return float((logits.argmax(axis=1) == labels).mean())


def pixel_accuracy(logits, masks) -> float:
    """Segmentation accuracy from (N, K, H, W) logits and (N, H, W)
    integer masks."""
    logits, masks = _arrays(logits, masks)
    return float((logits.argmax(axis=1) == masks).mean())
