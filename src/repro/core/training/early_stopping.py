"""Early stopping on a validation metric (paper Section V-C)."""

from __future__ import annotations

import numpy as np


class EarlyStopping:
    """Stop training when the monitored value stops improving.

    >>> stopper = EarlyStopping(patience=2)
    >>> [stopper.step(v) for v in (1.0, 0.9, 0.95, 0.97)]
    [False, False, False, True]
    """

    def __init__(self, patience: int = 3, min_delta: float = 0.0, mode: str = "min"):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if mode not in ("min", "max"):
            raise ValueError("mode must be 'min' or 'max'")
        self.patience = patience
        self.min_delta = min_delta
        self.mode = mode
        self.best = np.inf if mode == "min" else -np.inf
        self.bad_epochs = 0
        self.stopped = False

    def _improved(self, value: float) -> bool:
        if self.mode == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def step(self, value: float) -> bool:
        """Record one epoch's value; returns True when training should
        stop."""
        if self._improved(value):
            self.best = value
            self.bad_epochs = 0
        else:
            self.bad_epochs += 1
            if self.bad_epochs >= self.patience:
                self.stopped = True
        return self.stopped
