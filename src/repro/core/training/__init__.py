"""Training utilities: Trainer, early stopping, metrics, adapters."""

from repro.core.training.metrics import mae, rmse, accuracy, pixel_accuracy
from repro.core.training.early_stopping import EarlyStopping
from repro.core.training.adapters import (
    periodical_batch,
    sequential_batch,
    basic_batch,
    classification_batch,
    classification_with_features_batch,
    segmentation_batch,
)
from repro.core.training.trainer import Trainer, TrainingResult

__all__ = [
    "mae",
    "rmse",
    "accuracy",
    "pixel_accuracy",
    "EarlyStopping",
    "Trainer",
    "TrainingResult",
    "periodical_batch",
    "sequential_batch",
    "basic_batch",
    "classification_batch",
    "classification_with_features_batch",
    "segmentation_batch",
]
