"""Transform composition (mirrors ``torchvision.transforms.Compose``)."""

from __future__ import annotations


class Compose:
    """Chain transforms left to right.

    >>> Compose([lambda x: x + 1, lambda x: x * 2])(1)
    4
    """

    def __init__(self, transforms):
        self.transforms = list(transforms)

    def __call__(self, sample):
        for transform in self.transforms:
            sample = transform(sample)
        return sample

    def __repr__(self):
        inner = ", ".join(repr(t) for t in self.transforms)
        return f"Compose([{inner}])"
