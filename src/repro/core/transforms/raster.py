"""Raster transforms: callables on (C, H, W) float arrays.

These are the *on-the-fly* counterparts of the offline
:class:`~repro.core.preprocessing.raster.RasterProcessing` operations
(the Table VIII experiment measures exactly this online-vs-offline
trade-off).  Apply them via a dataset's ``transform=`` parameter
(Listing 7).
"""

from __future__ import annotations

import numpy as np

from repro.core.preprocessing.raster import indices as idx


class AppendNormalizedDifferenceIndex:
    """Append (b1 - b2) / (b1 + b2) of two bands as a new band."""

    def __init__(self, band_index1: int, band_index2: int):
        self.band_index1 = band_index1
        self.band_index2 = band_index2

    def __call__(self, image: np.ndarray) -> np.ndarray:
        band = idx.normalized_difference(
            image[self.band_index1], image[self.band_index2]
        )
        return np.concatenate([image, band[None]], axis=0)

    def __repr__(self):
        return (
            f"AppendNormalizedDifferenceIndex({self.band_index1}, "
            f"{self.band_index2})"
        )


class AppendRatioIndex:
    """Append b1 / b2 as a new band."""

    def __init__(self, band_index1: int, band_index2: int):
        self.band_index1 = band_index1
        self.band_index2 = band_index2

    def __call__(self, image: np.ndarray) -> np.ndarray:
        ratio = image[self.band_index1] / (image[self.band_index2] + 1e-8)
        return np.concatenate(
            [image, ratio[None].astype(image.dtype)], axis=0
        )

    def __repr__(self):
        return f"AppendRatioIndex({self.band_index1}, {self.band_index2})"


class MinMaxNormalize:
    """Scale every band to [0, 1] independently."""

    def __call__(self, image: np.ndarray) -> np.ndarray:
        out = np.empty_like(image, dtype=np.float32)
        for b in range(image.shape[0]):
            band = image[b]
            low, high = band.min(), band.max()
            out[b] = (band - low) / (high - low) if high > low else 0.0
        return out

    def __repr__(self):
        return "MinMaxNormalize()"


class Standardize:
    """Z-score each band with given (or per-image) statistics."""

    def __init__(self, mean=None, std=None):
        self.mean = None if mean is None else np.asarray(mean, dtype=np.float32)
        self.std = None if std is None else np.asarray(std, dtype=np.float32)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        mean = (
            self.mean.reshape(-1, 1, 1)
            if self.mean is not None
            else image.mean(axis=(1, 2), keepdims=True)
        )
        std = (
            self.std.reshape(-1, 1, 1)
            if self.std is not None
            else image.std(axis=(1, 2), keepdims=True)
        )
        return ((image - mean) / np.maximum(std, 1e-8)).astype(np.float32)

    def __repr__(self):
        return "Standardize()"


class DeleteBand:
    """Remove one band."""

    def __init__(self, band_index: int):
        self.band_index = band_index

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if not 0 <= self.band_index < image.shape[0]:
            raise IndexError(
                f"band {self.band_index} out of range for "
                f"{image.shape[0]}-band image"
            )
        keep = [b for b in range(image.shape[0]) if b != self.band_index]
        return image[keep]

    def __repr__(self):
        return f"DeleteBand({self.band_index})"


class InsertBand:
    """Insert a computed band at a position; ``band_fn(image) -> (H, W)``."""

    def __init__(self, band_fn, position: int = -1):
        self.band_fn = band_fn
        self.position = position

    def __call__(self, image: np.ndarray) -> np.ndarray:
        band = np.asarray(self.band_fn(image), dtype=image.dtype)[None]
        position = (
            image.shape[0] + 1 + self.position
            if self.position < 0
            else self.position
        )
        return np.concatenate(
            [image[:position], band, image[position:]], axis=0
        )

    def __repr__(self):
        return f"InsertBand(position={self.position})"


class MaskBandOnThreshold:
    """Clamp pixels of one band beyond a threshold to ``fill``."""

    def __init__(self, band_index: int, threshold: float, upper: bool = True,
                 fill: float = 0.0):
        self.band_index = band_index
        self.threshold = threshold
        self.upper = upper
        self.fill = fill

    def __call__(self, image: np.ndarray) -> np.ndarray:
        out = image.copy()
        band = out[self.band_index]
        mask = band > self.threshold if self.upper else band < self.threshold
        band[mask] = self.fill
        return out

    def __repr__(self):
        side = "upper" if self.upper else "lower"
        return (
            f"MaskBandOnThreshold(band={self.band_index}, "
            f"threshold={self.threshold}, {side})"
        )
