"""Grid-sample transforms.

Grid dataset items are ``(x, y)`` tuples or periodical dicts; these
transforms handle both shapes.
"""

from __future__ import annotations

import numpy as np


def _map_item(item, fn):
    if isinstance(item, dict):
        return {
            key: (fn(value) if key.startswith("x_") or key == "y_data" else value)
            for key, value in item.items()
        }
    if isinstance(item, tuple):
        return tuple(fn(part) for part in item)
    return fn(item)


class GridStandardize:
    """Z-score all frames of a grid sample with fixed statistics."""

    def __init__(self, mean: float, std: float):
        if std <= 0:
            raise ValueError(f"std must be positive, got {std}")
        self.mean = float(mean)
        self.std = float(std)

    def __call__(self, item):
        return _map_item(
            item, lambda a: ((a - self.mean) / self.std).astype(np.float32)
        )

    def __repr__(self):
        return f"GridStandardize(mean={self.mean}, std={self.std})"


class ClipValues:
    """Clip all frame values into [low, high]."""

    def __init__(self, low: float, high: float):
        if low > high:
            raise ValueError(f"low {low} exceeds high {high}")
        self.low = low
        self.high = high

    def __call__(self, item):
        return _map_item(item, lambda a: np.clip(a, self.low, self.high))

    def __repr__(self):
        return f"ClipValues({self.low}, {self.high})"
