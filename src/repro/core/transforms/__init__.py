"""Composable transforms for raster and grid samples."""

from repro.core.transforms.compose import Compose
from repro.core.transforms.raster import (
    AppendNormalizedDifferenceIndex,
    AppendRatioIndex,
    MinMaxNormalize,
    Standardize,
    DeleteBand,
    InsertBand,
    MaskBandOnThreshold,
)
from repro.core.transforms.grid import GridStandardize, ClipValues

__all__ = [
    "Compose",
    "AppendNormalizedDifferenceIndex",
    "AppendRatioIndex",
    "MinMaxNormalize",
    "Standardize",
    "DeleteBand",
    "InsertBand",
    "MaskBandOnThreshold",
    "GridStandardize",
    "ClipValues",
]
